#include "core/experiment.h"

#include <unordered_set>

#include "cover/coverage.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"

namespace convpairs {
namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

GroundTruth ComputeGroundTruthSpanned(const Graph& g1, const Graph& g2,
                                      const ShortestPathEngine& engine,
                                      int gt_depth) {
  obs::ScopedSpan span("experiment.ground_truth");
  return ComputeGroundTruth(g1, g2, engine, gt_depth);
}

}  // namespace

ExperimentRunner::ExperimentRunner(const Graph& g1, const Graph& g2,
                                   const ShortestPathEngine& engine,
                                   int gt_depth)
    : g1_(&g1),
      g2_(&g2),
      engine_(&engine),
      gt_depth_(gt_depth),
      ground_truth_(ComputeGroundTruthSpanned(g1, g2, engine, gt_depth)) {}

Dist ExperimentRunner::ThresholdAt(int offset) const {
  CONVPAIRS_CHECK_GE(offset, 0);
  CONVPAIRS_CHECK_LE(offset, gt_depth_);
  return ground_truth_.DeltaThreshold(offset);
}

uint64_t ExperimentRunner::KAt(int offset) const {
  return ground_truth_.CountAtLeast(ThresholdAt(offset));
}

ExperimentRunner::ThresholdArtifacts& ExperimentRunner::ArtifactsAt(
    int offset) {
  auto [it, inserted] = artifacts_.try_emplace(offset);
  if (inserted) {
    obs::ScopedSpan span("experiment.threshold_artifacts");
    it->second.pair_graph = std::make_unique<PairGraph>(
        ground_truth_.PairsAtLeast(ThresholdAt(offset)));
    it->second.cover =
        std::make_unique<CoverResult>(GreedyVertexCover(*it->second.pair_graph));
  }
  return it->second;
}

const PairGraph& ExperimentRunner::PairGraphAt(int offset) {
  return *ArtifactsAt(offset).pair_graph;
}

const CoverResult& ExperimentRunner::GreedyCoverAt(int offset) {
  return *ArtifactsAt(offset).cover;
}

ExperimentResult ExperimentRunner::RunSelector(CandidateSelector& selector,
                                               int offset,
                                               const RunConfig& config) {
  obs::ScopedSpan span("experiment.run_selector");
  obs::MetricsRegistry::Global()
      .GetCounter("experiment.selector_runs")
      .Increment();
  const PairGraph& pair_graph = PairGraphAt(offset);
  const CoverResult& cover = GreedyCoverAt(offset);

  TopKOptions options;
  options.k = static_cast<int>(KAt(offset));
  options.budget_m = config.budget_m;
  options.num_landmarks = config.num_landmarks;
  options.seed = config.seed;
  TopKResult top_k =
      FindTopKConvergingPairs(*g1_, *g2_, *engine_, selector, options);

  // Refund-funded extra candidates ran real SSSPs, so they count toward
  // coverage and endpoint hit rates alongside the selector's m picks.
  std::vector<NodeId> probed = top_k.candidates;
  probed.insert(probed.end(), top_k.extra_candidates.begin(),
                top_k.extra_candidates.end());

  ExperimentResult result;
  result.selector_name = selector.name();
  result.threshold = ThresholdAt(offset);
  result.k = KAt(offset);
  result.num_candidates = top_k.candidates.size();
  result.sssp_used = top_k.sssp_used;
  result.coverage = CoverageFraction(pair_graph, probed);
  result.endpoint_hit_rate = EndpointHitRate(pair_graph, probed);
  result.cover_hit_rate = SetHitRate(cover.nodes, top_k.candidates);

  // End-to-end retrieval check: how many true pairs actually appear in the
  // returned top-k list.
  std::unordered_set<uint64_t> truth;
  truth.reserve(pair_graph.num_pairs() * 2);
  for (const ConvergingPair& p : pair_graph.pairs()) {
    truth.insert(PairKey(p.u, p.v));
  }
  uint64_t retrieved = 0;
  for (const ConvergingPair& p : top_k.pairs) {
    if (truth.count(PairKey(p.u, p.v)) > 0) ++retrieved;
  }
  result.retrieved =
      pair_graph.num_pairs() == 0
          ? 1.0
          : static_cast<double>(retrieved) /
                static_cast<double>(pair_graph.num_pairs());
  return result;
}

}  // namespace convpairs
