#include "core/ground_truth.h"

#include <algorithm>
#include <mutex>

#include "util/check.h"
#include "util/parallel.h"

namespace convpairs {

uint64_t GroundTruth::CountExactly(Dist delta) const {
  if (delta < 0 || static_cast<size_t>(delta) >= histogram_.size()) return 0;
  return histogram_[static_cast<size_t>(delta)];
}

uint64_t GroundTruth::CountAtLeast(Dist delta) const {
  uint64_t count = 0;
  for (size_t d = static_cast<size_t>(std::max<Dist>(delta, 0));
       d < histogram_.size(); ++d) {
    count += histogram_[d];
  }
  return count;
}

std::vector<ConvergingPair> GroundTruth::PairsAtLeast(Dist delta) const {
  CONVPAIRS_CHECK_GE(delta, 1);
  CONVPAIRS_CHECK_GE(delta, stored_min_delta_);
  std::vector<ConvergingPair> out;
  for (const ConvergingPair& p : top_pairs_) {
    if (p.delta >= delta) out.push_back(p);
  }
  return out;
}

Dist GroundTruth::DeltaThreshold(int offset) const {
  return std::max<Dist>(1, max_delta_ - static_cast<Dist>(offset));
}

GroundTruth ComputeGroundTruth(const Graph& g1, const Graph& g2,
                               const ShortestPathEngine& engine, int depth,
                               int num_threads) {
  CONVPAIRS_CHECK_EQ(g1.num_nodes(), g2.num_nodes());
  CONVPAIRS_CHECK_GE(depth, 0);
  const NodeId n = g1.num_nodes();

  GroundTruth gt;
  std::mutex merge_mutex;

  // Pass 1: histogram of Delta over connected-in-g1 pairs, g1 diameter.
  ParallelForBlocks(
      n,
      [&](int /*thread_index*/, size_t begin, size_t end) {
        std::vector<Dist> d1;
        std::vector<Dist> d2;
        std::vector<uint64_t> local_hist;
        uint64_t local_connected = 0;
        Dist local_diameter = 0;
        for (size_t src = begin; src < end; ++src) {
          NodeId u = static_cast<NodeId>(src);
          if (g1.degree(u) == 0) continue;  // Isolated in g1: no finite d1.
          engine.Distances(g1, u, &d1, nullptr);
          engine.Distances(g2, u, &d2, nullptr);
          for (NodeId v = u + 1; v < n; ++v) {
            if (!IsReachable(d1[v])) continue;
            local_diameter = std::max(local_diameter, d1[v]);
            Dist delta = d1[v] - d2[v];
            CONVPAIRS_CHECK_GE(delta, 0);  // Insertions cannot grow paths.
            if (static_cast<size_t>(delta) >= local_hist.size()) {
              local_hist.resize(static_cast<size_t>(delta) + 1, 0);
            }
            ++local_hist[static_cast<size_t>(delta)];
            ++local_connected;
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (local_hist.size() > gt.histogram_.size()) {
          gt.histogram_.resize(local_hist.size(), 0);
        }
        for (size_t d = 0; d < local_hist.size(); ++d) {
          gt.histogram_[d] += local_hist[d];
        }
        gt.connected_pairs_ += local_connected;
        gt.g1_diameter_ = std::max(gt.g1_diameter_, local_diameter);
      },
      num_threads);

  gt.max_delta_ = 0;
  for (size_t d = gt.histogram_.size(); d-- > 0;) {
    if (gt.histogram_[d] > 0) {
      gt.max_delta_ = static_cast<Dist>(d);
      break;
    }
  }
  gt.stored_min_delta_ = std::max<Dist>(1, gt.max_delta_ - depth);
  if (gt.max_delta_ == 0) return gt;  // Nothing converged; no pairs stored.

  // Pass 2: collect pairs at/above the threshold.
  ParallelForBlocks(
      n,
      [&](int /*thread_index*/, size_t begin, size_t end) {
        std::vector<Dist> d1;
        std::vector<Dist> d2;
        std::vector<ConvergingPair> local_pairs;
        for (size_t src = begin; src < end; ++src) {
          NodeId u = static_cast<NodeId>(src);
          if (g1.degree(u) == 0) continue;
          engine.Distances(g1, u, &d1, nullptr);
          engine.Distances(g2, u, &d2, nullptr);
          for (NodeId v = u + 1; v < n; ++v) {
            if (!IsReachable(d1[v])) continue;
            Dist delta = d1[v] - d2[v];
            if (delta >= gt.stored_min_delta_) {
              local_pairs.push_back({u, v, delta});
            }
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        gt.top_pairs_.insert(gt.top_pairs_.end(), local_pairs.begin(),
                             local_pairs.end());
      },
      num_threads);

  std::sort(gt.top_pairs_.begin(), gt.top_pairs_.end(),
            [](const ConvergingPair& a, const ConvergingPair& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return gt;
}

}  // namespace convpairs
