#include "core/ground_truth.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <span>

#include "sssp/bfs_engine.h"
#include "util/check.h"
#include "util/parallel.h"

namespace convpairs {
namespace {

// Drives both ground-truth passes: calls `visit(u, d1, d2)` for every node u
// with nonzero degree in g1, in parallel over sources. Batchable engines run
// the two snapshots through paired 64-way MS-BFS runners (one adjacency scan
// per batch per graph); others fall back to per-source Distances. The spans
// are worker scratch, valid only during the call.
void ForEachSourcePairDistances(
    const Graph& g1, const Graph& g2, const ShortestPathEngine& engine,
    int num_threads,
    const std::function<void(NodeId u, std::span<const Dist> d1,
                             std::span<const Dist> d2)>& visit) {
  const NodeId n = g1.num_nodes();
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < n; ++u) {
    if (g1.degree(u) > 0) sources.push_back(u);
  }
  if (sources.empty()) return;

  if (!engine.UnweightedBatchable()) {
    ParallelForBlocks(
        sources.size(),
        [&](int /*thread_index*/, size_t begin, size_t end) {
          std::vector<Dist> d1;
          std::vector<Dist> d2;
          for (size_t i = begin; i < end; ++i) {
            engine.Distances(g1, sources[i], &d1, nullptr);
            engine.Distances(g2, sources[i], &d2, nullptr);
            visit(sources[i], d1, d2);
          }
        },
        num_threads);
    return;
  }

  const size_t num_batches =
      (sources.size() + kMsBfsBatchWidth - 1) / kMsBfsBatchWidth;
  struct Scratch {
    std::unique_ptr<MsBfsRunner> runner1;
    std::unique_ptr<MsBfsRunner> runner2;
    std::vector<Dist> rows1;
    std::vector<Dist> rows2;
  };
  std::vector<Scratch> scratch(
      static_cast<size_t>(MaxParallelWorkers(num_batches, num_threads)));
  ParallelForBlocks(
      num_batches,
      [&](int thread_index, size_t begin, size_t end) {
        Scratch& s = scratch[static_cast<size_t>(thread_index)];
        if (s.runner1 == nullptr) {
          s.runner1 = std::make_unique<MsBfsRunner>(g1);
          s.runner2 = std::make_unique<MsBfsRunner>(g2);
        }
        for (size_t b = begin; b < end; ++b) {
          const size_t first = b * kMsBfsBatchWidth;
          const size_t lanes =
              std::min<size_t>(kMsBfsBatchWidth, sources.size() - first);
          std::span<const NodeId> batch(sources.data() + first, lanes);
          s.rows1.resize(lanes * n);
          s.rows2.resize(lanes * n);
          s.runner1->Run(batch, s.rows1);
          s.runner2->Run(batch, s.rows2);
          for (size_t i = 0; i < lanes; ++i) {
            visit(batch[i], std::span<const Dist>(s.rows1.data() + i * n, n),
                  std::span<const Dist>(s.rows2.data() + i * n, n));
          }
        }
      },
      num_threads);
}

}  // namespace

uint64_t GroundTruth::CountExactly(Dist delta) const {
  if (delta < 0 || static_cast<size_t>(delta) >= histogram_.size()) return 0;
  return histogram_[static_cast<size_t>(delta)];
}

uint64_t GroundTruth::CountAtLeast(Dist delta) const {
  uint64_t count = 0;
  for (size_t d = static_cast<size_t>(std::max<Dist>(delta, 0));
       d < histogram_.size(); ++d) {
    count += histogram_[d];
  }
  return count;
}

std::vector<ConvergingPair> GroundTruth::PairsAtLeast(Dist delta) const {
  CONVPAIRS_CHECK_GE(delta, 1);
  CONVPAIRS_CHECK_GE(delta, stored_min_delta_);
  std::vector<ConvergingPair> out;
  for (const ConvergingPair& p : top_pairs_) {
    if (p.delta >= delta) out.push_back(p);
  }
  return out;
}

Dist GroundTruth::DeltaThreshold(int offset) const {
  return std::max<Dist>(1, max_delta_ - static_cast<Dist>(offset));
}

GroundTruth ComputeGroundTruth(const Graph& g1, const Graph& g2,
                               const ShortestPathEngine& engine, int depth,
                               int num_threads) {
  CONVPAIRS_CHECK_EQ(g1.num_nodes(), g2.num_nodes());
  CONVPAIRS_CHECK_GE(depth, 0);
  const NodeId n = g1.num_nodes();

  GroundTruth gt;
  std::mutex merge_mutex;

  // Pass 1: histogram of Delta over connected-in-g1 pairs, g1 diameter.
  // (Sources isolated in g1 are skipped by the driver: no finite d1.)
  ForEachSourcePairDistances(
      g1, g2, engine, num_threads,
      [&](NodeId u, std::span<const Dist> d1, std::span<const Dist> d2) {
        std::vector<uint64_t> local_hist;
        uint64_t local_connected = 0;
        Dist local_diameter = 0;
        for (NodeId v = u + 1; v < n; ++v) {
          if (!IsReachable(d1[v])) continue;
          local_diameter = std::max(local_diameter, d1[v]);
          Dist delta = d1[v] - d2[v];
          CONVPAIRS_CHECK_GE(delta, 0);  // Insertions cannot grow paths.
          if (static_cast<size_t>(delta) >= local_hist.size()) {
            local_hist.resize(static_cast<size_t>(delta) + 1, 0);
          }
          ++local_hist[static_cast<size_t>(delta)];
          ++local_connected;
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        if (local_hist.size() > gt.histogram_.size()) {
          gt.histogram_.resize(local_hist.size(), 0);
        }
        for (size_t d = 0; d < local_hist.size(); ++d) {
          gt.histogram_[d] += local_hist[d];
        }
        gt.connected_pairs_ += local_connected;
        gt.g1_diameter_ = std::max(gt.g1_diameter_, local_diameter);
      });

  gt.max_delta_ = 0;
  for (size_t d = gt.histogram_.size(); d-- > 0;) {
    if (gt.histogram_[d] > 0) {
      gt.max_delta_ = static_cast<Dist>(d);
      break;
    }
  }
  gt.stored_min_delta_ = std::max<Dist>(1, gt.max_delta_ - depth);
  if (gt.max_delta_ == 0) return gt;  // Nothing converged; no pairs stored.

  // Pass 2: collect pairs at/above the threshold.
  ForEachSourcePairDistances(
      g1, g2, engine, num_threads,
      [&](NodeId u, std::span<const Dist> d1, std::span<const Dist> d2) {
        std::vector<ConvergingPair> local_pairs;
        for (NodeId v = u + 1; v < n; ++v) {
          if (!IsReachable(d1[v])) continue;
          Dist delta = d1[v] - d2[v];
          if (delta >= gt.stored_min_delta_) {
            local_pairs.push_back({u, v, delta});
          }
        }
        if (local_pairs.empty()) return;
        std::lock_guard<std::mutex> lock(merge_mutex);
        gt.top_pairs_.insert(gt.top_pairs_.end(), local_pairs.begin(),
                             local_pairs.end());
      });

  std::sort(gt.top_pairs_.begin(), gt.top_pairs_.end(),
            [](const ConvergingPair& a, const ConvergingPair& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  return gt;
}

}  // namespace convpairs
