#include "core/top_k.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <queue>
#include <span>
#include <unordered_set>

#include "obs/registry.h"
#include "obs/trace.h"
#include "sssp/bfs_engine.h"
#include "util/check.h"

namespace convpairs {
namespace {

constexpr uint32_t kNoRow = std::numeric_limits<uint32_t>::max();

// Deterministic total order on pairs: larger delta first, then lexicographic.
bool BetterPair(const ConvergingPair& a, const ConvergingPair& b) {
  if (a.delta != b.delta) return a.delta > b.delta;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

struct TopKInstruments {
  obs::Counter& skipped;
  obs::Counter& bounded;
  obs::Counter& batches;
  obs::Counter& batched_rows;
  obs::Counter& extras;

  static const TopKInstruments& Get() {
    static const TopKInstruments instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return TopKInstruments{
          registry.GetCounter("topk.prune.skipped_total"),
          registry.GetCounter("topk.prune.bounded_total"),
          registry.GetCounter("topk.extract.batches_total"),
          registry.GetCounter("topk.extract.batched_rows_total"),
          registry.GetCounter("topk.refund.extras_total")};
    }();
    return instruments;
  }
};

// One extraction run. Bundles the flat lookup tables, the running k-th-best
// threshold, and the traversal scratch so the chunked candidate loop stays
// readable. Candidates are processed in order; within each 64-wide chunk the
// uncached G_t1 rows run as one MS-BFS batch, then each candidate's G_t2
// side either reuses a selector row, is skipped outright by the threshold
// bound, runs as a threshold-bounded traversal (hop-count engines), or falls
// back to a full engine SSSP (weighted engines, pruning off). The nominal
// budget charge sequence is identical in every mode — pruning only converts
// charges into refunds.
class Extractor {
 public:
  Extractor(const Graph& g1, const Graph& g2, const ShortestPathEngine& engine,
            const CandidateSet& candidate_set, int k, SsspBudget* budget,
            const ExtractOptions& options)
      : g1_(g1),
        g2_(g2),
        engine_(engine),
        set_(candidate_set),
        k_(k),
        budget_(budget),
        options_(options),
        n_(g1.num_nodes()),
        bounded_ok_(engine.UnweightedBatchable()) {}

  TopKResult Run() {
    CONVPAIRS_CHECK_EQ(g1_.num_nodes(), g2_.num_nodes());
    CONVPAIRS_CHECK_GE(k_, 0);
    result_.candidates = set_.nodes;
    scanned_.assign(n_, 0);
    g1_row_idx_.assign(n_, kNoRow);
    for (uint32_t i = 0; i < set_.g1_rows.sources().size(); ++i) {
      NodeId src = set_.g1_rows.sources()[i];
      CONVPAIRS_CHECK_LT(src, n_);
      g1_row_idx_[src] = i;
    }
    g2_row_idx_.assign(n_, kNoRow);
    for (uint32_t i = 0; i < set_.g2_rows.sources().size(); ++i) {
      NodeId src = set_.g2_rows.sources()[i];
      CONVPAIRS_CHECK_LT(src, n_);
      g2_row_idx_[src] = i;
    }
    if (k_ == 0) {
      // Nothing can enter an empty top-k: every fresh traversal is skipped
      // (still charged nominally, fully refunded).
      theta_known_ = true;
      theta_ = kInfDist;
    }

    ProcessMainCandidates();
    ProcessExtras();

    size_t keep = std::min<size_t>(static_cast<size_t>(k_), found_.size());
    std::partial_sort(found_.begin(), found_.begin() + keep, found_.end(),
                      BetterPair);
    found_.resize(keep);
    result_.pairs = std::move(found_);
    if (budget_ != nullptr) {
      result_.sssp_used = budget_->used();
      result_.sssp_refunded = budget_->refunded();
      result_.sssp_effective = budget_->effective_used();
    }
    return std::move(result_);
  }

 private:
  void ProcessMainCandidates() {
    const std::vector<NodeId>& nodes = set_.nodes;
    const bool batch = options_.batch && engine_.UnweightedBatchable();
    const bool batch_g2 = batch && !options_.prune;
    std::vector<NodeId> g1_sources;
    std::vector<NodeId> g2_sources;
    std::vector<uint32_t> g1_lane;
    std::vector<uint32_t> g2_lane;
    for (size_t start = 0; start < nodes.size(); start += kMsBfsBatchWidth) {
      const size_t count =
          std::min<size_t>(kMsBfsBatchWidth, nodes.size() - start);
      std::span<const NodeId> chunk(nodes.data() + start, count);
      for (NodeId c : chunk) CONVPAIRS_CHECK_LT(c, n_);

      // Batch the chunk's uncached G_t1 rows: one MS-BFS lane per
      // occurrence, charged identically to the per-candidate serial path.
      g1_lane.assign(count, kNoRow);
      if (batch) {
        g1_sources.clear();
        for (size_t i = 0; i < count; ++i) {
          if (g1_row_idx_[chunk[i]] == kNoRow) {
            g1_lane[i] = static_cast<uint32_t>(g1_sources.size());
            g1_sources.push_back(chunk[i]);
          }
        }
        if (!g1_sources.empty()) {
          if (budget_ != nullptr) {
            CONVPAIRS_CHECK_OK(
                budget_->Charge(static_cast<int64_t>(g1_sources.size())));
          }
          RunBatch(g1_, g1_sources, &g1_batch_rows_);
        }
      }

      // Pruning off: the G_t2 rows have no threshold to respect, so they
      // batch the same way. (With pruning on they run bounded, candidate by
      // candidate, because theta tightens between scans.)
      g2_lane.assign(count, kNoRow);
      if (batch_g2) {
        g2_sources.clear();
        for (size_t i = 0; i < count; ++i) {
          if (g2_row_idx_[chunk[i]] == kNoRow) {
            g2_lane[i] = static_cast<uint32_t>(g2_sources.size());
            g2_sources.push_back(chunk[i]);
          }
        }
        if (!g2_sources.empty()) {
          if (budget_ != nullptr) {
            CONVPAIRS_CHECK_OK(
                budget_->Charge(static_cast<int64_t>(g2_sources.size())));
          }
          RunBatch(g2_, g2_sources, &g2_batch_rows_);
          for (const Dist d : g2_batch_rows_) {
            if (IsReachable(d)) ++result_.g2_nodes_settled;
          }
        }
      }

      // Resolve every candidate's G_t1 row before any G_t2 work: the
      // adjacency warm start and the scan ordering below want the whole
      // chunk's rows up front. Serial rows (batch off) are copied into
      // per-chunk storage so the spans stay stable.
      chunk_d1_.assign(count, std::span<const Dist>());
      if (!batch) d1_serial_rows_.resize(count * static_cast<size_t>(n_));
      for (size_t i = 0; i < count; ++i) {
        const NodeId c = chunk[i];
        if (g1_row_idx_[c] != kNoRow) {
          chunk_d1_[i] = set_.g1_rows.row(g1_row_idx_[c]);
        } else if (g1_lane[i] != kNoRow) {
          chunk_d1_[i] = std::span<const Dist>(g1_batch_rows_)
                             .subspan(static_cast<size_t>(g1_lane[i]) * n_, n_);
        } else {
          engine_.Distances(g1_, c, &d1_owned_, budget_);
          std::copy(d1_owned_.begin(), d1_owned_.end(),
                    d1_serial_rows_.begin() + i * static_cast<size_t>(n_));
          chunk_d1_[i] = std::span<const Dist>(d1_serial_rows_)
                             .subspan(i * static_cast<size_t>(n_), n_);
        }
      }

      // Adjacency warm start (hop-count engines only): an edge (c, v) in
      // G_t2 fixes d2(c, v) = 1 exactly, so the pair's delta d1[v] - 1 is
      // known before any G_t2 traversal runs. Seeding the k-th-best heap
      // with the chunk's adjacency deltas pushes theta to near its final
      // value up front, which is what makes the skip/cut bounds bite. Each
      // seeded pair is remembered so its eventual emission does not count
      // it a second time (theta must stay the k-th best over *distinct*
      // true pairs).
      if (options_.prune && bounded_ok_) {
        for (size_t i = 0; i < count; ++i) {
          const NodeId c = chunk[i];
          std::span<const Dist> d1 = chunk_d1_[i];
          for (NodeId v : g2_.neighbors(c)) {
            if (v == c || !IsReachable(d1[v]) || scanned_[v] != 0) continue;
            const Dist delta = d1[v] - 1;
            if (delta <= 0) continue;
            if (warm_pairs_.insert(PairKeyOf(c, v)).second) NoteDelta(delta);
          }
        }
      }

      // Scan order within the chunk: candidates with a free (cached) G_t2
      // row first — their pairs tighten theta at zero traversal cost — then
      // fresh candidates by descending distance potential, so the cheap-to-
      // bound ones run against the tightest threshold. Order never changes
      // the output (pair emission is symmetric) or the nominal charges.
      order_.resize(count);
      std::iota(order_.begin(), order_.end(), size_t{0});
      if (options_.prune) {
        potential_.assign(count, -1);
        for (size_t i = 0; i < count; ++i) {
          if (g2_row_idx_[chunk[i]] != kNoRow || g2_lane[i] != kNoRow) {
            potential_[i] = kInfDist;
            continue;
          }
          std::span<const Dist> d1 = chunk_d1_[i];
          for (NodeId v = 0; v < n_; ++v) {
            if (v != chunk[i] && IsReachable(d1[v]) && d1[v] > potential_[i]) {
              potential_[i] = d1[v];
            }
          }
        }
        std::sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
          if (potential_[a] != potential_[b]) {
            return potential_[a] > potential_[b];
          }
          return a < b;
        });
      }

      for (size_t idx : order_) {
        const NodeId c = chunk[idx];
        std::span<const Dist> d2_pre;
        if (g2_row_idx_[c] != kNoRow) {
          d2_pre = set_.g2_rows.row(g2_row_idx_[c]);
        } else if (g2_lane[idx] != kNoRow) {
          d2_pre = std::span<const Dist>(g2_batch_rows_)
                       .subspan(static_cast<size_t>(g2_lane[idx]) * n_, n_);
        }
        ScanCandidate(c, chunk_d1_[idx], d2_pre, /*nominal=*/true);
      }
    }
  }

  // Refund-funded fallback pool: while the pool holds 2 whole units, fund
  // one more candidate without touching the nominal counter.
  void ProcessExtras() {
    if (budget_ == nullptr || options_.extra_candidates.empty()) return;
    for (NodeId e : options_.extra_candidates) {
      CONVPAIRS_CHECK_LT(e, n_);
      if (scanned_[e] != 0) continue;  // Already covered as a candidate.
      if (!budget_->TrySpendRefund(2)) break;
      std::span<const Dist> d1;
      if (g1_row_idx_[e] != kNoRow) {
        d1 = set_.g1_rows.row(g1_row_idx_[e]);
      } else {
        engine_.Distances(g1_, e, &d1_owned_, nullptr);
        d1 = d1_owned_;
      }
      std::span<const Dist> d2_pre;
      if (g2_row_idx_[e] != kNoRow) d2_pre = set_.g2_rows.row(g2_row_idx_[e]);
      ScanCandidate(e, d1, d2_pre, /*nominal=*/false);
      result_.extra_candidates.push_back(e);
      TopKInstruments::Get().extras.Increment();
    }
  }

  // A node is still interesting for candidate c when it is connected in
  // G_t1 and its pair with c was not already emitted by an earlier scan.
  bool Eligible(NodeId c, NodeId v, std::span<const Dist> d1) const {
    return v != c && IsReachable(d1[v]) && scanned_[v] == 0;
  }

  static uint64_t PairKeyOf(NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  void RunBatch(const Graph& g, std::span<const NodeId> sources,
                std::vector<Dist>* rows) {
    std::unique_ptr<MsBfsRunner>& runner = (&g == &g1_) ? g1_runner_ : g2_runner_;
    if (runner == nullptr) runner = std::make_unique<MsBfsRunner>(g);
    rows->resize(sources.size() * static_cast<size_t>(n_));
    runner->Run(sources, *rows);
    const TopKInstruments& instruments = TopKInstruments::Get();
    instruments.batches.Increment();
    instruments.batched_rows.Add(static_cast<int64_t>(sources.size()));
  }

  // Computes (or adopts) the G_t2 row for `c` and folds its delta row into
  // the running top-k. `d2_pre` non-empty means the row is already paid for
  // (selector reuse or chunk batch). `nominal` is false for refund-funded
  // extras, whose traversals must not touch the nominal counter.
  void ScanCandidate(NodeId c, std::span<const Dist> d1,
                     std::span<const Dist> d2_pre, bool nominal) {
    std::span<const Dist> d2;
    if (!d2_pre.empty()) {
      d2 = d2_pre;
    } else {
      Dist best = -1;
      if (options_.prune) {
        // Upper bound on any pair c can still contribute: G_t2 only gains
        // edges, so d2 >= 1 for v != c and Delta <= best_relevant_d1 - 1.
        scores_.assign(n_, kNoScore);
        for (NodeId v = 0; v < n_; ++v) {
          if (!Eligible(c, v, d1)) continue;
          scores_[v] = d1[v];
          if (d1[v] > best) best = d1[v];
        }
        if (best < 0 || (theta_known_ && best - 1 < theta_)) {
          if (nominal && budget_ != nullptr) {
            CONVPAIRS_CHECK_OK(budget_->ChargeSkipped());
          }
          ++result_.candidates_skipped;
          TopKInstruments::Get().skipped.Increment();
          scanned_[c] = 1;
          return;
        }
      }
      if (options_.prune && bounded_ok_) {
        if (bounded_runner_ == nullptr) {
          bounded_runner_ = std::make_unique<ThresholdBoundedBfsRunner>(g2_);
        }
        BoundedRunStats stats =
            bounded_runner_->Run(c, scores_, theta_known_ ? theta_ : kNoThreshold,
                                 nominal ? budget_ : nullptr);
        d2 = bounded_runner_->dist();
        ++result_.bounded_sssp;
        result_.g2_nodes_settled += stats.nodes_settled;
        TopKInstruments::Get().bounded.Increment();
      } else {
        // Weighted engine or pruning off: full SSSP.
        engine_.Distances(g2_, c, &d2_owned_, nominal ? budget_ : nullptr);
        d2 = d2_owned_;
        for (const Dist d : d2) {
          if (IsReachable(d)) ++result_.g2_nodes_settled;
        }
      }
    }

    for (NodeId v = 0; v < n_; ++v) {
      if (v == c || !IsReachable(d1[v]) || scanned_[v] != 0) continue;
      const Dist delta = d1[v] - d2[v];
      if (delta <= 0) continue;
      // A pair strictly below the running k-th best can never be reported;
      // dropping it here keeps `found_` near k entries. Ties (== theta)
      // stay: they can still win on the lexicographic order.
      if (theta_known_ && delta < theta_) continue;
      found_.push_back({std::min(c, v), std::max(c, v), delta});
      // Adjacency pairs (d2 == 1) may already be in the k-th-best heap from
      // the warm start; counting them again would overstate theta and turn
      // the prune bounds unsound.
      if (d2[v] == 1 && warm_pairs_.count(PairKeyOf(c, v)) != 0) continue;
      NoteDelta(delta);
    }
    scanned_[c] = 1;
  }

  // Maintains the k smallest-of-the-best heap whose top is the running
  // k-th best delta (theta).
  void NoteDelta(Dist delta) {
    if (k_ == 0) return;  // theta pinned to kInfDist in Run().
    if (kth_.size() < static_cast<size_t>(k_)) {
      kth_.push(delta);
      if (kth_.size() == static_cast<size_t>(k_)) {
        theta_known_ = true;
        theta_ = kth_.top();
      }
    } else if (delta > kth_.top()) {
      kth_.pop();
      kth_.push(delta);
      theta_ = kth_.top();
    }
  }

  const Graph& g1_;
  const Graph& g2_;
  const ShortestPathEngine& engine_;
  const CandidateSet& set_;
  const int k_;
  SsspBudget* const budget_;
  const ExtractOptions& options_;
  const NodeId n_;
  const bool bounded_ok_;

  TopKResult result_;
  std::vector<ConvergingPair> found_;
  std::vector<uint8_t> scanned_;     // Candidate already emitted its pairs.
  std::vector<uint32_t> g1_row_idx_;  // NodeId -> selector row, kNoRow if none.
  std::vector<uint32_t> g2_row_idx_;
  bool theta_known_ = false;
  Dist theta_ = 0;
  std::priority_queue<Dist, std::vector<Dist>, std::greater<>> kth_;

  std::unique_ptr<MsBfsRunner> g1_runner_;
  std::unique_ptr<MsBfsRunner> g2_runner_;
  std::unique_ptr<ThresholdBoundedBfsRunner> bounded_runner_;
  std::vector<Dist> g1_batch_rows_;
  std::vector<Dist> g2_batch_rows_;
  std::vector<Dist> d1_owned_;
  std::vector<Dist> d2_owned_;
  std::vector<Dist> scores_;
  std::vector<std::span<const Dist>> chunk_d1_;  // Resolved rows, per chunk.
  std::vector<Dist> d1_serial_rows_;  // Backing store when batching is off.
  std::vector<size_t> order_;         // Chunk scan order (prune mode).
  std::vector<Dist> potential_;       // Max finite d1 per chunk candidate.
  std::unordered_set<uint64_t> warm_pairs_;  // Adjacency-seeded pair keys.
};

}  // namespace

TopKResult ExtractTopKPairs(const Graph& g1, const Graph& g2,
                            const ShortestPathEngine& engine,
                            const CandidateSet& candidate_set, int k,
                            SsspBudget* budget) {
  return ExtractTopKPairs(g1, g2, engine, candidate_set, k, budget,
                          ExtractOptions{});
}

TopKResult ExtractTopKPairs(const Graph& g1, const Graph& g2,
                            const ShortestPathEngine& engine,
                            const CandidateSet& candidate_set, int k,
                            SsspBudget* budget,
                            const ExtractOptions& options) {
  obs::ScopedSpan span("topk.extract_pairs");
  Extractor extractor(g1, g2, engine, candidate_set, k, budget, options);
  return extractor.Run();
}

std::vector<NodeId> RankExtraCandidates(const Graph& g1, const Graph& g2,
                                        const std::vector<NodeId>& candidates,
                                        size_t count) {
  CONVPAIRS_CHECK_EQ(g1.num_nodes(), g2.num_nodes());
  const NodeId n = g1.num_nodes();
  std::vector<uint8_t> excluded(n, 0);
  for (NodeId c : candidates) {
    CONVPAIRS_CHECK_LT(c, n);
    excluded[c] = 1;
  }
  struct Scored {
    int64_t growth;
    NodeId node;
  };
  std::vector<Scored> pool;
  for (NodeId v = 0; v < n; ++v) {
    if (excluded[v] != 0) continue;
    // Inactive in G_t1: no finite d1 row, cannot be a pair endpoint.
    if (g1.degree(v) == 0) continue;
    const int64_t growth = static_cast<int64_t>(g2.degree(v)) -
                           static_cast<int64_t>(g1.degree(v));
    // Degree growth is the cheapest convergence signal we have (DegDiff
    // family); unchanged nodes cannot have converged through a new edge.
    if (growth <= 0) continue;
    pool.push_back({growth, v});
  }
  std::sort(pool.begin(), pool.end(), [](const Scored& a, const Scored& b) {
    if (a.growth != b.growth) return a.growth > b.growth;
    return a.node < b.node;
  });
  if (pool.size() > count) pool.resize(count);
  std::vector<NodeId> result;
  result.reserve(pool.size());
  for (const Scored& s : pool) result.push_back(s.node);
  return result;
}

TopKResult FindTopKConvergingPairs(const Graph& g1, const Graph& g2,
                                   const ShortestPathEngine& engine,
                                   CandidateSelector& selector,
                                   const TopKOptions& options) {
  obs::ScopedSpan span("topk.find");
  CONVPAIRS_CHECK_GT(options.budget_m, 0);
  SsspBudget budget(options.enforce_budget
                        ? static_cast<int64_t>(options.budget_m) * 2
                        : SsspBudget::kUnlimited);
  Rng rng(options.seed);
  SelectorContext context;
  context.g1 = &g1;
  context.g2 = &g2;
  context.engine = &engine;
  context.budget_m = options.budget_m;
  context.num_landmarks = options.num_landmarks;
  context.rng = &rng;
  context.budget = &budget;

  CandidateSet candidates = selector.SelectCandidates(context);
  ExtractOptions extract_options;
  extract_options.prune = options.prune;
  // Refund spending only makes sense under a real cap: an unlimited budget
  // has nothing to give back. The pool is capped at m extras — each costs 2
  // units, so even a 100%-refunded extraction cannot drain more.
  if (options.spend_refunds && options.prune && options.enforce_budget) {
    extract_options.extra_candidates = RankExtraCandidates(
        g1, g2, candidates.nodes, static_cast<size_t>(options.budget_m));
  }
  TopKResult result = ExtractTopKPairs(g1, g2, engine, candidates, options.k,
                                       &budget, extract_options);
  result.sssp_used = budget.used();
  result.sssp_refunded = budget.refunded();
  result.sssp_effective = budget.effective_used();
  return result;
}

}  // namespace convpairs
