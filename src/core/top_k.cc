#include "core/top_k.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"
#include "util/check.h"

namespace convpairs {
namespace {

// Deterministic total order on pairs: larger delta first, then lexicographic.
bool BetterPair(const ConvergingPair& a, const ConvergingPair& b) {
  if (a.delta != b.delta) return a.delta > b.delta;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

}  // namespace

TopKResult ExtractTopKPairs(const Graph& g1, const Graph& g2,
                            const ShortestPathEngine& engine,
                            const CandidateSet& candidate_set, int k,
                            SsspBudget* budget) {
  obs::ScopedSpan span("topk.extract_pairs");
  CONVPAIRS_CHECK_EQ(g1.num_nodes(), g2.num_nodes());
  CONVPAIRS_CHECK_GE(k, 0);
  const NodeId n = g1.num_nodes();

  TopKResult result;
  result.candidates = candidate_set.nodes;

  // Membership bitmap for candidate-candidate dedup: a pair (c, v) with both
  // endpoints candidates is emitted only by its smaller endpoint.
  std::vector<bool> is_candidate(n, false);
  for (NodeId c : candidate_set.nodes) {
    CONVPAIRS_CHECK_LT(c, n);
    is_candidate[c] = true;
  }

  // Rows already computed during selection (keyed by source node).
  std::unordered_map<NodeId, size_t> reusable_g1_row;
  for (size_t i = 0; i < candidate_set.g1_rows.sources().size(); ++i) {
    reusable_g1_row.emplace(candidate_set.g1_rows.sources()[i], i);
  }
  std::unordered_map<NodeId, size_t> reusable_g2_row;
  for (size_t i = 0; i < candidate_set.g2_rows.sources().size(); ++i) {
    reusable_g2_row.emplace(candidate_set.g2_rows.sources()[i], i);
  }

  std::vector<ConvergingPair> found;
  std::vector<Dist> d1_owned;
  std::vector<Dist> d2_owned;
  for (NodeId c : candidate_set.nodes) {
    std::span<const Dist> d1;
    auto it = reusable_g1_row.find(c);
    if (it != reusable_g1_row.end()) {
      d1 = candidate_set.g1_rows.row(it->second);
    } else {
      engine.Distances(g1, c, &d1_owned, budget);
      d1 = d1_owned;
    }
    std::span<const Dist> d2;
    auto it2 = reusable_g2_row.find(c);
    if (it2 != reusable_g2_row.end()) {
      d2 = candidate_set.g2_rows.row(it2->second);
    } else {
      engine.Distances(g2, c, &d2_owned, budget);
      d2 = d2_owned;
    }
    for (NodeId v = 0; v < n; ++v) {
      if (v == c || !IsReachable(d1[v])) continue;
      if (is_candidate[v] && v < c) continue;  // Emitted by the other side.
      Dist delta = d1[v] - d2[v];
      if (delta <= 0) continue;
      found.push_back({std::min(c, v), std::max(c, v), delta});
    }
  }

  size_t keep = std::min<size_t>(static_cast<size_t>(k), found.size());
  std::partial_sort(found.begin(), found.begin() + keep, found.end(),
                    BetterPair);
  found.resize(keep);
  result.pairs = std::move(found);
  if (budget != nullptr) result.sssp_used = budget->used();
  return result;
}

TopKResult FindTopKConvergingPairs(const Graph& g1, const Graph& g2,
                                   const ShortestPathEngine& engine,
                                   CandidateSelector& selector,
                                   const TopKOptions& options) {
  obs::ScopedSpan span("topk.find");
  CONVPAIRS_CHECK_GT(options.budget_m, 0);
  SsspBudget budget(options.enforce_budget
                        ? static_cast<int64_t>(options.budget_m) * 2
                        : SsspBudget::kUnlimited);
  Rng rng(options.seed);
  SelectorContext context;
  context.g1 = &g1;
  context.g2 = &g2;
  context.engine = &engine;
  context.budget_m = options.budget_m;
  context.num_landmarks = options.num_landmarks;
  context.rng = &rng;
  context.budget = &budget;

  CandidateSet candidates = selector.SelectCandidates(context);
  TopKResult result = ExtractTopKPairs(g1, g2, engine, candidates, options.k,
                                       &budget);
  result.sssp_used = budget.used();
  return result;
}

}  // namespace convpairs
