// Exact ground truth for evaluation: the full distribution of distance
// decreases Delta(u,v) between two snapshots, and the set of top pairs.
//
// The paper evaluates on graphs "of manageable size, for which it is
// feasible to compute all-pairs shortest paths" (Section 5.1). This engine
// runs two SSSPs per source (one per snapshot) and streams the pair deltas,
// so it never materializes an n x n matrix. Two passes bound memory: pass 1
// builds the Delta histogram (giving max Delta and the exact k for each
// threshold δ = max Delta - i); pass 2 collects the actual pairs with
// Delta >= the requested threshold.
//
// Never used inside the budgeted algorithms — it IS the quadratic baseline
// they avoid.

#ifndef CONVPAIRS_CORE_GROUND_TRUTH_H_
#define CONVPAIRS_CORE_GROUND_TRUTH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "sssp/dijkstra.h"

namespace convpairs {

/// Full Delta distribution plus the stored top-pair set.
class GroundTruth {
 public:
  /// Largest distance decrease over all pairs connected in g1.
  Dist max_delta() const { return max_delta_; }

  /// Largest finite distance in g1 (the diameter; Table 2).
  Dist g1_diameter() const { return g1_diameter_; }

  /// Number of pairs connected in g1.
  uint64_t connected_pairs() const { return connected_pairs_; }

  /// Number of connected pairs with Delta exactly `delta`.
  uint64_t CountExactly(Dist delta) const;

  /// Number of connected pairs with Delta >= `delta` — the paper's k for
  /// threshold δ (so the top-k set is unique).
  uint64_t CountAtLeast(Dist delta) const;

  /// All pairs with Delta >= `delta`. Requires delta >= stored_min_delta()
  /// (i.e. within the depth requested at computation time) and delta >= 1.
  std::vector<ConvergingPair> PairsAtLeast(Dist delta) const;

  /// Smallest threshold PairsAtLeast can serve.
  Dist stored_min_delta() const { return stored_min_delta_; }

  /// The paper's threshold convention: δ = max Delta - offset (floored at 1).
  Dist DeltaThreshold(int offset) const;

 private:
  friend GroundTruth ComputeGroundTruth(const Graph&, const Graph&,
                                        const ShortestPathEngine&, int, int);

  Dist max_delta_ = 0;
  Dist g1_diameter_ = 0;
  Dist stored_min_delta_ = 0;
  uint64_t connected_pairs_ = 0;
  std::vector<uint64_t> histogram_;         // index = Delta value
  std::vector<ConvergingPair> top_pairs_;   // Delta >= stored_min_delta_
};

/// Computes the ground truth between two snapshots with the same node-id
/// space. `depth` controls how far below max Delta pairs are stored
/// (the paper uses thresholds max Delta - {0,1,2}, i.e. depth 2).
/// Requires distances not to increase between snapshots (edge insertions
/// only); a violating pair aborts.
GroundTruth ComputeGroundTruth(const Graph& g1, const Graph& g2,
                               const ShortestPathEngine& engine,
                               int depth = 2, int num_threads = 0);

}  // namespace convpairs

#endif  // CONVPAIRS_CORE_GROUND_TRUTH_H_
