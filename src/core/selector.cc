#include "core/selector.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace convpairs {

std::vector<NodeId> TopActiveByScore(const Graph& g1,
                                     const std::vector<double>& scores,
                                     size_t count,
                                     const std::vector<NodeId>& exclude) {
  std::unordered_set<NodeId> excluded(exclude.begin(), exclude.end());
  std::vector<NodeId> eligible;
  eligible.reserve(g1.num_nodes());
  NodeId limit = static_cast<NodeId>(
      std::min<size_t>(scores.size(), g1.num_nodes()));
  for (NodeId u = 0; u < limit; ++u) {
    if (g1.degree(u) == 0) continue;
    if (excluded.count(u) > 0) continue;
    eligible.push_back(u);
  }
  count = std::min(count, eligible.size());
  std::partial_sort(eligible.begin(), eligible.begin() + count,
                    eligible.end(), [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  eligible.resize(count);
  return eligible;
}

}  // namespace convpairs
