// Candidate-selection interface (paper Section 4.2).
//
// A CandidateSelector spends part of the SSSP budget to pick the set M of
// candidate endpoints; the generic top-k algorithm (core/top_k.h) then
// spends the rest computing M's distance rows in both snapshots. Selectors
// may return G_t1 rows they already computed during selection (dispersion
// policies), which the top-k phase adopts instead of recomputing — the
// budget-reuse trick behind the paper's Table 1 accounting.

#ifndef CONVPAIRS_CORE_SELECTOR_H_
#define CONVPAIRS_CORE_SELECTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "sssp/budget.h"
#include "sssp/dijkstra.h"
#include "sssp/distance_matrix.h"
#include "util/rng.h"

namespace convpairs {

/// Everything a selection policy may consult. The budget tracker is charged
/// for every SSSP the policy runs; the policy must leave enough budget for
/// the top-k phase (2 SSSPs per returned candidate).
struct SelectorContext {
  const Graph* g1 = nullptr;
  const Graph* g2 = nullptr;
  const ShortestPathEngine* engine = nullptr;
  /// Per-snapshot SSSP budget m; the whole pipeline may spend 2m.
  int budget_m = 100;
  /// Landmark count l for landmark-based policies (paper fixes l = 10).
  int num_landmarks = 10;
  Rng* rng = nullptr;
  SsspBudget* budget = nullptr;
};

/// Output of a selection policy.
struct CandidateSet {
  /// Candidate endpoints M. The budget must cover every candidate whose
  /// rows are NOT already present below (2 fresh SSSPs per such candidate).
  std::vector<NodeId> nodes;
  /// G_t1 / G_t2 distance rows computed as a side effect of selection
  /// (keyed by source inside the matrix). May contain rows for
  /// non-candidates too; the top-k phase reuses whatever matches. This is
  /// how landmark-based policies return the landmarks themselves as
  /// zero-cost candidates: their rows in both snapshots were already paid
  /// for during selection, and dispersed landmarks are disproportionately
  /// likely to be converging-pair endpoints.
  DistanceMatrix g1_rows;
  DistanceMatrix g2_rows;
};

/// Strategy interface. Implementations are stateless across calls except
/// for configuration (so one instance can be reused across budgets).
class CandidateSelector {
 public:
  virtual ~CandidateSelector() = default;

  /// Policy name as it appears in the paper's tables (e.g. "SumDiff").
  virtual std::string name() const = 0;

  /// Picks candidate endpoints within the context's budget.
  virtual CandidateSet SelectCandidates(SelectorContext& context) = 0;
};

/// Ranks nodes by `scores` and returns the top `count` that are active
/// (degree >= 1) in `g1` — inactive nodes cannot belong to a connected pair
/// of G_t1, so spending budget on them is always wasted. Ties break toward
/// lower ids. `exclude` entries are skipped.
std::vector<NodeId> TopActiveByScore(const Graph& g1,
                                     const std::vector<double>& scores,
                                     size_t count,
                                     const std::vector<NodeId>& exclude = {});

}  // namespace convpairs

#endif  // CONVPAIRS_CORE_SELECTOR_H_
