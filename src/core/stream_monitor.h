// Sliding-window convergence monitoring over an evolving graph stream
// (DESIGN.md §6, multi-slice extension).
//
// The paper analyses one snapshot pair; production monitoring wants the
// converging pairs of every consecutive window, with duplicate suppression
// (a pair that converged in window t and is simply *still close* in window
// t+1 must not re-alert) and attention to repeat offenders (a node that
// converges toward new partners window after window — the paper's protein
// "community joining" signal).

#ifndef CONVPAIRS_CORE_STREAM_MONITOR_H_
#define CONVPAIRS_CORE_STREAM_MONITOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/selector.h"
#include "core/top_k.h"
#include "graph/dynamic_stream.h"
#include "graph/temporal_graph.h"
#include "sssp/dijkstra.h"

namespace convpairs {

/// Abstracts the evolving-graph source a monitor watches: given an edge
/// fraction in [0,1], produce the snapshot, plus the number of events in a
/// range. Adapters exist for TemporalGraph (insert-only) and
/// DynamicGraphStream (inserts + deletes).
struct SnapshotSource {
  std::function<Graph(double fraction)> snapshot;
  std::function<size_t(double from, double to)> events_between;

  static SnapshotSource FromTemporal(const TemporalGraph* stream);
  static SnapshotSource FromDynamic(const DynamicGraphStream* stream);
};

struct StreamMonitorOptions {
  /// Pairs reported per window.
  int k = 10;
  /// SSSP budget per snapshot of each window.
  int budget_m = 50;
  int num_landmarks = 10;
  uint64_t seed = 0;
  /// Suppress pairs already alerted in a previous window.
  bool deduplicate_alerts = true;
  /// Also report diverging pairs per window (only meaningful on sources
  /// with deletions; needs a diverging-capable selector, see
  /// core/diverging.h — when unset only converging alerts are produced).
  CandidateSelector* diverging_selector = nullptr;
};

/// One window's outcome.
struct WindowReport {
  double from_fraction = 0.0;
  double to_fraction = 0.0;
  /// Edge events inside the window.
  size_t new_events = 0;
  /// Fresh alerts (after dedup), best first.
  std::vector<ConvergingPair> alerts;
  /// Diverging alerts (delta = distance increase), when a diverging
  /// selector is configured.
  std::vector<ConvergingPair> diverging_alerts;
  /// Pairs found but suppressed as duplicates.
  size_t suppressed = 0;
  int64_t sssp_used = 0;
};

/// Drives one selection policy across consecutive windows of a stream.
class StreamMonitor {
 public:
  /// `stream` and `engine` must outlive the monitor.
  StreamMonitor(const TemporalGraph* stream, const ShortestPathEngine* engine,
                std::unique_ptr<CandidateSelector> selector,
                const StreamMonitorOptions& options);

  /// Deletion-capable source; converging alerts behave identically, and a
  /// configured diverging selector adds drift alerts per window.
  StreamMonitor(SnapshotSource source, const ShortestPathEngine* engine,
                std::unique_ptr<CandidateSelector> selector,
                const StreamMonitorOptions& options);

  /// Processes the window (from_fraction, to_fraction]. Windows may overlap
  /// or be processed out of order; dedup state is global.
  WindowReport ProcessWindow(double from_fraction, double to_fraction);

  /// Convenience: slides a window of width `window` from `start` to 1.0 in
  /// steps of `window`, returning one report per step.
  std::vector<WindowReport> Sweep(double start, double window);

  /// Nodes ranked by how many distinct windows they appeared in an alert
  /// (the "converging toward multiple partners over time" signal).
  std::vector<std::pair<NodeId, int>> RepeatOffenders(int min_windows) const;

  /// Total distinct pairs alerted so far.
  size_t total_alerts() const { return alerted_pairs_.size(); }

 private:
  SnapshotSource source_;
  const ShortestPathEngine* engine_;
  std::unique_ptr<CandidateSelector> selector_;
  StreamMonitorOptions options_;
  uint64_t window_counter_ = 0;
  std::set<uint64_t> alerted_pairs_;
  // node -> set of window indices with an alert involving the node.
  std::map<NodeId, std::set<uint64_t>> node_windows_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_CORE_STREAM_MONITOR_H_
