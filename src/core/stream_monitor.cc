#include "core/stream_monitor.h"

#include <algorithm>
#include <cmath>

#include "core/diverging.h"
#include "util/check.h"

namespace convpairs {
namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

SnapshotSource SnapshotSource::FromTemporal(const TemporalGraph* stream) {
  CONVPAIRS_CHECK(stream != nullptr);
  SnapshotSource source;
  source.snapshot = [stream](double fraction) {
    return stream->SnapshotAtFraction(fraction);
  };
  source.events_between = [stream](double from, double to) {
    return stream->EdgesInFractionRange(from, to).size();
  };
  return source;
}

SnapshotSource SnapshotSource::FromDynamic(const DynamicGraphStream* stream) {
  CONVPAIRS_CHECK(stream != nullptr);
  SnapshotSource source;
  source.snapshot = [stream](double fraction) {
    return stream->SnapshotAtFraction(fraction);
  };
  source.events_between = [stream](double from, double to) {
    size_t total = stream->num_events();
    auto prefix = [total](double fraction) {
      return static_cast<size_t>(
          std::llround(fraction * static_cast<double>(total)));
    };
    return prefix(to) - prefix(from);
  };
  return source;
}

StreamMonitor::StreamMonitor(const TemporalGraph* stream,
                             const ShortestPathEngine* engine,
                             std::unique_ptr<CandidateSelector> selector,
                             const StreamMonitorOptions& options)
    : StreamMonitor(SnapshotSource::FromTemporal(stream), engine,
                    std::move(selector), options) {}

StreamMonitor::StreamMonitor(SnapshotSource source,
                             const ShortestPathEngine* engine,
                             std::unique_ptr<CandidateSelector> selector,
                             const StreamMonitorOptions& options)
    : source_(std::move(source)),
      engine_(engine),
      selector_(std::move(selector)),
      options_(options) {
  CONVPAIRS_CHECK(source_.snapshot != nullptr);
  CONVPAIRS_CHECK(source_.events_between != nullptr);
  CONVPAIRS_CHECK(engine_ != nullptr);
  CONVPAIRS_CHECK(selector_ != nullptr);
}

WindowReport StreamMonitor::ProcessWindow(double from_fraction,
                                          double to_fraction) {
  CONVPAIRS_CHECK_LT(from_fraction, to_fraction);
  WindowReport report;
  report.from_fraction = from_fraction;
  report.to_fraction = to_fraction;
  report.new_events = source_.events_between(from_fraction, to_fraction);

  Graph g1 = source_.snapshot(from_fraction);
  Graph g2 = source_.snapshot(to_fraction);

  TopKOptions options;
  options.k = options_.k;
  options.budget_m = options_.budget_m;
  options.num_landmarks = options_.num_landmarks;
  options.seed = options_.seed + window_counter_;
  // Deletions can make converging deltas undefined under the insert-only
  // extraction; it skips pairs whose distance grew, so a mixed stream is
  // handled correctly by construction (d1 - d2 <= 0 pairs are dropped).
  TopKResult result =
      FindTopKConvergingPairs(g1, g2, *engine_, *selector_, options);
  report.sssp_used = result.sssp_used;

  uint64_t window_index = window_counter_++;
  for (const ConvergingPair& pair : result.pairs) {
    uint64_t key = PairKey(pair.u, pair.v);
    if (options_.deduplicate_alerts && alerted_pairs_.count(key) > 0) {
      ++report.suppressed;
      continue;
    }
    alerted_pairs_.insert(key);
    node_windows_[pair.u].insert(window_index);
    node_windows_[pair.v].insert(window_index);
    report.alerts.push_back(pair);
  }

  if (options_.diverging_selector != nullptr) {
    SsspBudget diverging_budget(
        static_cast<int64_t>(options_.budget_m) * 2);
    Rng rng(options_.seed + window_index + 0x9E37ULL);
    SelectorContext context;
    context.g1 = &g1;
    context.g2 = &g2;
    context.engine = engine_;
    context.budget_m = options_.budget_m;
    context.num_landmarks = options_.num_landmarks;
    context.rng = &rng;
    context.budget = &diverging_budget;
    CandidateSet candidates =
        options_.diverging_selector->SelectCandidates(context);
    TopKResult diverging = ExtractTopKDivergingPairs(
        g1, g2, *engine_, candidates, options_.k, &diverging_budget);
    report.diverging_alerts = std::move(diverging.pairs);
    report.sssp_used += diverging_budget.used();
  }
  return report;
}

std::vector<WindowReport> StreamMonitor::Sweep(double start, double window) {
  CONVPAIRS_CHECK_GT(window, 0.0);
  std::vector<WindowReport> reports;
  for (double from = start; from + window <= 1.0 + 1e-12; from += window) {
    reports.push_back(ProcessWindow(from, std::min(1.0, from + window)));
  }
  return reports;
}

std::vector<std::pair<NodeId, int>> StreamMonitor::RepeatOffenders(
    int min_windows) const {
  std::vector<std::pair<NodeId, int>> offenders;
  for (const auto& [node, windows] : node_windows_) {
    if (static_cast<int>(windows.size()) >= min_windows) {
      offenders.push_back({node, static_cast<int>(windows.size())});
    }
  }
  std::sort(offenders.begin(), offenders.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return offenders;
}

}  // namespace convpairs
