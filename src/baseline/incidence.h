// The Incidence algorithm family of [14] (paper Sections 4.2.6 and 5.4) —
// the prior-art baseline the budgeted policies are compared against.
//
// [14] observes that converging pairs are created by *new* edges, and takes
// as candidates the "active" nodes: endpoints of edges present in G_t2 but
// not G_t1.
//   * Unbudgeted Incidence runs SSSP from every active node in both
//     snapshots (Table 6: near-complete coverage, but |A| is a large
//     fraction of the graph, orders of magnitude above the m budget).
//   * Selective Expansion additionally pulls in neighbors of active nodes
//     carrying "important" (high edge-betweenness) edges and iterates until
//     no new pairs appear. Following the paper's comparison, we grant it
//     exact Brandes edge betweenness.
//   * The budgeted rank policies IncDeg / IncBet keep only the top-m active
//     nodes by degree growth / incident-edge betweenness growth, making the
//     approach comparable under the paper's budget model (Table 5 rows).

#ifndef CONVPAIRS_BASELINE_INCIDENCE_H_
#define CONVPAIRS_BASELINE_INCIDENCE_H_

#include <memory>
#include <vector>

#include "centrality/brandes.h"
#include "core/selector.h"
#include "core/top_k.h"

namespace convpairs {

/// Endpoints of edges in G_t2 but not in G_t1 ("active" nodes of [14]),
/// restricted to nodes active (degree >= 1) in G_t1 — brand-new nodes have
/// no finite G_t1 distance and cannot belong to a converging pair.
std::vector<NodeId> ActiveNodes(const Graph& g1, const Graph& g2);

/// Unbudgeted Incidence: SSSP from every active node. `sssp_used` in the
/// result records the true cost (2 |A|).
TopKResult RunIncidenceUnbudgeted(const Graph& g1, const Graph& g2,
                                  const ShortestPathEngine& engine, int k);

/// Result of Selective Expansion.
struct SelectiveExpansionResult {
  TopKResult top_k;
  /// Final candidate set size after all expansion rounds.
  size_t final_active_size = 0;
  int rounds = 0;
};

/// Selective Expansion: iteratively adds neighbors of current candidates
/// whose connecting edges rank in the top `important_edge_fraction` of
/// G_t2's edge betweenness, re-extracting pairs until the top-k set is
/// stable or `max_rounds` is hit. Exponentially expensive on large graphs
/// (the paper skipped it for efficiency reasons; we cap the rounds).
SelectiveExpansionResult RunSelectiveExpansion(
    const Graph& g1, const Graph& g2, const ShortestPathEngine& engine,
    const EdgeBetweenness& betweenness_g2, int k,
    double important_edge_fraction = 0.1, int max_rounds = 3);

/// "IncDeg": top-m active nodes by deg_t2 - deg_t1.
class IncDegSelector final : public CandidateSelector {
 public:
  std::string name() const override { return "IncDeg"; }
  CandidateSet SelectCandidates(SelectorContext& context) override;
};

/// "IncBet": top-m active nodes by the increase of the total betweenness of
/// their incident edges between snapshots. The two exact edge-betweenness
/// structures are computed once by the caller (the paper grants the
/// baseline this precomputation without charging the SSSP budget).
class IncBetSelector final : public CandidateSelector {
 public:
  IncBetSelector(std::shared_ptr<const EdgeBetweenness> betweenness_g1,
                 std::shared_ptr<const EdgeBetweenness> betweenness_g2);

  std::string name() const override { return "IncBet"; }
  CandidateSet SelectCandidates(SelectorContext& context) override;

 private:
  std::shared_ptr<const EdgeBetweenness> betweenness_g1_;
  std::shared_ptr<const EdgeBetweenness> betweenness_g2_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_BASELINE_INCIDENCE_H_
