#include "baseline/incidence.h"

#include <algorithm>
#include <unordered_set>

#include "centrality/degree.h"
#include "util/check.h"

namespace convpairs {
namespace {

uint64_t PairKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

std::vector<NodeId> ActiveNodes(const Graph& g1, const Graph& g2) {
  CONVPAIRS_CHECK_EQ(g1.num_nodes(), g2.num_nodes());
  std::vector<NodeId> active;
  for (NodeId u = 0; u < g2.num_nodes(); ++u) {
    if (g1.degree(u) == 0) continue;  // New in G_t2: no finite G_t1 distance.
    if (g2.degree(u) == g1.degree(u)) continue;  // Degrees only grow.
    active.push_back(u);
  }
  return active;
}

TopKResult RunIncidenceUnbudgeted(const Graph& g1, const Graph& g2,
                                  const ShortestPathEngine& engine, int k) {
  CandidateSet candidates;
  candidates.nodes = ActiveNodes(g1, g2);
  SsspBudget budget;  // Unlimited: this is the expensive baseline.
  TopKResult result = ExtractTopKPairs(g1, g2, engine, candidates, k, &budget);
  result.sssp_used = budget.used();
  return result;
}

SelectiveExpansionResult RunSelectiveExpansion(
    const Graph& g1, const Graph& g2, const ShortestPathEngine& engine,
    const EdgeBetweenness& betweenness_g2, int k,
    double important_edge_fraction, int max_rounds) {
  CONVPAIRS_CHECK_GT(important_edge_fraction, 0.0);
  // Importance threshold: the top fraction of G_t2 edge betweenness scores.
  std::vector<double> all_scores;
  all_scores.reserve(g2.num_edges());
  for (const Edge& e : g2.ToEdgeList()) {
    all_scores.push_back(betweenness_g2.Get(e.u, e.v));
  }
  double threshold = 0.0;
  if (!all_scores.empty()) {
    size_t keep = std::max<size_t>(
        1, static_cast<size_t>(static_cast<double>(all_scores.size()) *
                               important_edge_fraction));
    std::nth_element(all_scores.begin(), all_scores.begin() + (keep - 1),
                     all_scores.end(), std::greater<>());
    threshold = all_scores[keep - 1];
  }

  std::unordered_set<NodeId> active_set;
  for (NodeId u : ActiveNodes(g1, g2)) active_set.insert(u);

  SelectiveExpansionResult result;
  SsspBudget budget;
  std::unordered_set<uint64_t> previous_pairs;
  for (int round = 0; round < max_rounds; ++round) {
    ++result.rounds;
    CandidateSet candidates;
    candidates.nodes.assign(active_set.begin(), active_set.end());
    std::sort(candidates.nodes.begin(), candidates.nodes.end());
    result.top_k = ExtractTopKPairs(g1, g2, engine, candidates, k, &budget);

    std::unordered_set<uint64_t> current_pairs;
    for (const ConvergingPair& p : result.top_k.pairs) {
      current_pairs.insert(PairKey(p.u, p.v));
    }
    bool stable = current_pairs == previous_pairs;
    previous_pairs = std::move(current_pairs);

    // Expand: neighbors (in G_t2) of current candidates reached over
    // important edges, if they exist in G_t1.
    size_t before = active_set.size();
    if (!stable) {
      std::vector<NodeId> frontier(active_set.begin(), active_set.end());
      for (NodeId u : frontier) {
        for (NodeId v : g2.neighbors(u)) {
          if (g1.degree(v) == 0) continue;
          if (betweenness_g2.Get(u, v) >= threshold) active_set.insert(v);
        }
      }
    }
    if (stable || active_set.size() == before) break;
  }
  result.top_k.sssp_used = budget.used();
  result.final_active_size = active_set.size();
  return result;
}

CandidateSet IncDegSelector::SelectCandidates(SelectorContext& context) {
  std::vector<NodeId> active = ActiveNodes(*context.g1, *context.g2);
  std::vector<double> diff = DegreeDiffScores(*context.g1, *context.g2);
  std::sort(active.begin(), active.end(), [&diff](NodeId a, NodeId b) {
    if (diff[a] != diff[b]) return diff[a] > diff[b];
    return a < b;
  });
  if (active.size() > static_cast<size_t>(context.budget_m)) {
    active.resize(static_cast<size_t>(context.budget_m));
  }
  CandidateSet result;
  result.nodes = std::move(active);
  return result;
}

IncBetSelector::IncBetSelector(
    std::shared_ptr<const EdgeBetweenness> betweenness_g1,
    std::shared_ptr<const EdgeBetweenness> betweenness_g2)
    : betweenness_g1_(std::move(betweenness_g1)),
      betweenness_g2_(std::move(betweenness_g2)) {
  CONVPAIRS_CHECK(betweenness_g1_ != nullptr);
  CONVPAIRS_CHECK(betweenness_g2_ != nullptr);
}

CandidateSet IncBetSelector::SelectCandidates(SelectorContext& context) {
  std::vector<NodeId> active = ActiveNodes(*context.g1, *context.g2);
  std::vector<double> score(context.g1->num_nodes(), 0.0);
  for (NodeId u : active) {
    score[u] = betweenness_g2_->IncidentSum(*context.g2, u) -
               betweenness_g1_->IncidentSum(*context.g1, u);
  }
  std::sort(active.begin(), active.end(), [&score](NodeId a, NodeId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  if (active.size() > static_cast<size_t>(context.budget_m)) {
    active.resize(static_cast<size_t>(context.budget_m));
  }
  CandidateSet result;
  result.nodes = std::move(active);
  return result;
}

}  // namespace convpairs
