#include "centrality/sampled_betweenness.h"

#include <algorithm>

#include "util/check.h"

namespace convpairs {

EdgeBetweenness SampledEdgeBetweenness(const Graph& g, uint32_t num_samples,
                                       Rng& rng) {
  CONVPAIRS_CHECK_GT(num_samples, 0u);
  const NodeId n = g.num_nodes();
  num_samples = std::min<uint32_t>(num_samples, n);
  std::vector<uint32_t> sources =
      rng.SampleWithoutReplacement(n, num_samples);

  std::unordered_map<uint64_t, double> scores;
  scores.reserve(g.num_edges());
  for (uint32_t source : sources) {
    AccumulateEdgeDependencies(g, static_cast<NodeId>(source), &scores);
  }
  // Exact betweenness sums over ALL sources and halves (each unordered pair
  // counted from both endpoints); rescale the sample accordingly.
  double scale =
      static_cast<double>(n) / (2.0 * static_cast<double>(num_samples));
  for (auto& [key, value] : scores) value *= scale;
  return EdgeBetweenness::FromScores(std::move(scores));
}

}  // namespace convpairs
