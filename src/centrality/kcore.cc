#include "centrality/kcore.h"

#include <algorithm>

namespace convpairs {

std::vector<uint32_t> CoreNumbers(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_degree = std::max(max_degree, degree[u]);
  }

  // Bucket sort nodes by current degree (Matula-Beck / Batagelj-Zaversnik).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bucket_start[degree[u] + 1];
  for (uint32_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<NodeId> order(n);        // Nodes sorted by degree.
  std::vector<uint32_t> position(n);   // Node -> index in `order`.
  {
    std::vector<uint32_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      position[u] = cursor[degree[u]];
      order[position[u]] = u;
      ++cursor[degree[u]];
    }
  }

  std::vector<uint32_t> core(n);
  for (uint32_t i = 0; i < n; ++i) {
    NodeId u = order[i];
    core[u] = degree[u];
    for (NodeId v : g.neighbors(u)) {
      if (degree[v] <= degree[u]) continue;
      // Move v one bucket down: swap it with the first node of its bucket.
      uint32_t v_pos = position[v];
      uint32_t bucket_first_pos = bucket_start[degree[v]];
      NodeId bucket_first = order[bucket_first_pos];
      if (v != bucket_first) {
        std::swap(order[v_pos], order[bucket_first_pos]);
        position[v] = bucket_first_pos;
        position[bucket_first] = v_pos;
      }
      ++bucket_start[degree[v]];
      --degree[v];
    }
  }
  return core;
}

uint32_t Degeneracy(const Graph& g) {
  uint32_t degeneracy = 0;
  for (uint32_t core : CoreNumbers(g)) degeneracy = std::max(degeneracy, core);
  return degeneracy;
}

}  // namespace convpairs
