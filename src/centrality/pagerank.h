// PageRank centrality (power iteration) — an additional centrality axis for
// the selector ablations and classifier features. The paper's centrality
// policies use degree only; PageRank lets the ablation bench test whether a
// smarter notion of centrality rescues the centrality family (it does not:
// central nodes are already close to everything, the same failure mode as
// degree).

#ifndef CONVPAIRS_CENTRALITY_PAGERANK_H_
#define CONVPAIRS_CENTRALITY_PAGERANK_H_

#include <vector>

#include "graph/graph.h"

namespace convpairs {

struct PageRankOptions {
  double damping = 0.85;
  int max_iterations = 100;
  /// Stop when the L1 change between iterations drops below this.
  double tolerance = 1e-9;
};

/// PageRank scores (sum to 1 over all nodes). Isolated nodes receive the
/// teleport mass only; dangling mass is redistributed uniformly. On an
/// undirected graph this converges near the degree distribution but differs
/// enough on hub-adjacent nodes to be a distinct feature.
[[nodiscard]] std::vector<double> PageRank(const Graph& g,
                                           const PageRankOptions& options = {});

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_PAGERANK_H_
