#include "centrality/pagerank.h"

#include <cmath>

#include "util/check.h"

namespace convpairs {

std::vector<double> PageRank(const Graph& g, const PageRankOptions& options) {
  CONVPAIRS_CHECK_GT(options.damping, 0.0);
  CONVPAIRS_CHECK_LT(options.damping, 1.0);
  const NodeId n = g.num_nodes();
  if (n == 0) return {};

  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  const double teleport = (1.0 - options.damping) / n;

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (g.degree(u) == 0) dangling_mass += rank[u];
    }
    double base = teleport + options.damping * dangling_mass / n;
    std::fill(next.begin(), next.end(), base);
    for (NodeId u = 0; u < n; ++u) {
      uint32_t deg = g.degree(u);
      if (deg == 0) continue;
      double share = options.damping * rank[u] / deg;
      for (NodeId v : g.neighbors(u)) next[v] += share;
    }
    double change = 0.0;
    for (NodeId u = 0; u < n; ++u) change += std::abs(next[u] - rank[u]);
    rank.swap(next);
    if (change < options.tolerance) break;
  }
  return rank;
}

}  // namespace convpairs
