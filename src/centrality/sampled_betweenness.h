// Sampled (approximate) edge betweenness.
//
// [14] does not compute exact edge betweenness; it *estimates* edge
// importance "using a randomly selected set of shortest path trees". The
// paper's comparison granted the baseline exact values; this module
// implements the sampled original so the Incidence-baseline ablation can
// quantify what that concession was worth. Estimator: run Brandes
// accumulation from `num_samples` uniformly sampled sources and rescale by
// n / num_samples (unbiased for the exact score).

#ifndef CONVPAIRS_CENTRALITY_SAMPLED_BETWEENNESS_H_
#define CONVPAIRS_CENTRALITY_SAMPLED_BETWEENNESS_H_

#include "centrality/brandes.h"
#include "util/rng.h"

namespace convpairs {

/// Estimates edge betweenness from `num_samples` source sweeps
/// (num_samples is clamped to the node count; equality reproduces the
/// exact computation up to scaling round-off).
[[nodiscard]] EdgeBetweenness SampledEdgeBetweenness(const Graph& g,
                                                     uint32_t num_samples,
                                                     Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_SAMPLED_BETWEENNESS_H_
