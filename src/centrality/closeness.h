// Closeness centrality (harmonic variant) — used by the ablation benches to
// contrast centrality notions and available as an extra classifier feature.

#ifndef CONVPAIRS_CENTRALITY_CLOSENESS_H_
#define CONVPAIRS_CENTRALITY_CLOSENESS_H_

#include <vector>

#include "graph/graph.h"

namespace convpairs {

/// Harmonic closeness: C(u) = sum_{v != u, reachable} 1 / d(u, v).
/// Well-defined on disconnected graphs (unreachable pairs contribute 0).
/// O(n m); intended for evaluation-scale graphs, not the budgeted pipeline.
[[nodiscard]] std::vector<double> HarmonicCloseness(const Graph& g,
                                                    int num_threads = 0);

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_CLOSENESS_H_
