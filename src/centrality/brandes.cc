#include "centrality/brandes.h"

#include <mutex>

#include "util/check.h"
#include "util/parallel.h"

namespace convpairs {
namespace {

// One Brandes source sweep: BFS with path counting, then reverse-order
// dependency accumulation. `edge_delta`, when non-null, receives per-edge
// contributions; `node_delta`, when non-null, receives per-node ones.
struct BrandesWorkspace {
  std::vector<Dist> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  std::vector<NodeId> order;

  void Run(const Graph& g, NodeId s,
           std::unordered_map<uint64_t, double>* edge_delta,
           std::vector<double>* node_delta) {
    const NodeId n = g.num_nodes();
    dist.assign(n, kInfDist);
    sigma.assign(n, 0.0);
    delta.assign(n, 0.0);
    order.clear();

    dist[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);
    for (size_t head = 0; head < order.size(); ++head) {
      NodeId u = order[head];
      Dist next = dist[u] + 1;
      for (NodeId v : g.neighbors(u)) {
        if (dist[v] == kInfDist) {
          dist[v] = next;
          order.push_back(v);
        }
        if (dist[v] == next) sigma[v] += sigma[u];
      }
    }
    for (size_t i = order.size(); i-- > 0;) {
      NodeId w = order[i];
      for (NodeId v : g.neighbors(w)) {
        if (dist[v] + 1 != dist[w]) continue;  // v is not a predecessor of w.
        double contribution = sigma[v] / sigma[w] * (1.0 + delta[w]);
        delta[v] += contribution;
        if (edge_delta != nullptr) {
          (*edge_delta)[EdgeBetweenness::EdgeKey(v, w)] += contribution;
        }
      }
      if (node_delta != nullptr && w != s) (*node_delta)[w] += delta[w];
    }
  }
};

}  // namespace

std::vector<double> NodeBetweenness(const Graph& g, int num_threads) {
  const NodeId n = g.num_nodes();
  std::vector<double> total(n, 0.0);
  std::mutex merge_mutex;
  ParallelForBlocks(
      n,
      [&](int /*thread_index*/, size_t begin, size_t end) {
        BrandesWorkspace ws;
        std::vector<double> local(n, 0.0);
        for (size_t s = begin; s < end; ++s) {
          ws.Run(g, static_cast<NodeId>(s), nullptr, &local);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (NodeId u = 0; u < n; ++u) total[u] += local[u];
      },
      num_threads);
  // Each unordered pair contributes from both endpoints as sources.
  for (double& score : total) score /= 2.0;
  return total;
}

uint64_t EdgeBetweenness::EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

EdgeBetweenness EdgeBetweenness::FromScores(
    std::unordered_map<uint64_t, double> map) {
  EdgeBetweenness result;
  result.scores_ = std::move(map);
  return result;
}

void AccumulateEdgeDependencies(
    const Graph& g, NodeId s,
    std::unordered_map<uint64_t, double>* edge_delta) {
  BrandesWorkspace ws;
  ws.Run(g, s, edge_delta, nullptr);
}

EdgeBetweenness EdgeBetweenness::Compute(const Graph& g, int num_threads) {
  EdgeBetweenness result;
  std::mutex merge_mutex;
  ParallelForBlocks(
      g.num_nodes(),
      [&](int /*thread_index*/, size_t begin, size_t end) {
        BrandesWorkspace ws;
        std::unordered_map<uint64_t, double> local;
        local.reserve(g.num_edges());
        for (size_t s = begin; s < end; ++s) {
          ws.Run(g, static_cast<NodeId>(s), &local, nullptr);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (const auto& [key, value] : local) result.scores_[key] += value;
      },
      num_threads);
  for (auto& [key, value] : result.scores_) value /= 2.0;
  return result;
}

double EdgeBetweenness::Get(NodeId u, NodeId v) const {
  auto it = scores_.find(EdgeKey(u, v));
  return it == scores_.end() ? 0.0 : it->second;
}

double EdgeBetweenness::IncidentSum(const Graph& g, NodeId u) const {
  double sum = 0.0;
  for (NodeId v : g.neighbors(u)) sum += Get(u, v);
  return sum;
}

}  // namespace convpairs
