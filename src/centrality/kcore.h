// k-core decomposition (Matula–Beck peeling, O(n + m)).
//
// The core number of a node — the largest k such that the node survives in
// the k-core — is a robust "how embedded is this node" signal, cheaper than
// betweenness and less hub-skewed than degree. Exposed as an optional
// classifier feature and used by the centrality ablation (core-periphery
// position correlates with convergence: peripheral, low-core nodes are the
// ones with room to converge).

#ifndef CONVPAIRS_CENTRALITY_KCORE_H_
#define CONVPAIRS_CENTRALITY_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace convpairs {

/// Core number per node (0 for isolated nodes).
[[nodiscard]] std::vector<uint32_t> CoreNumbers(const Graph& g);

/// Largest k with a non-empty k-core (the graph's degeneracy).
[[nodiscard]] uint32_t Degeneracy(const Graph& g);

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_KCORE_H_
