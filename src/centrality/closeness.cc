#include "centrality/closeness.h"

#include <numeric>

#include "sssp/bfs_engine.h"

namespace convpairs {

std::vector<double> HarmonicCloseness(const Graph& g, int num_threads) {
  std::vector<double> closeness(g.num_nodes(), 0.0);
  std::vector<NodeId> sources(g.num_nodes());
  std::iota(sources.begin(), sources.end(), NodeId{0});
  // Harmonic closeness is hop-count based, so every source rides the 64-way
  // MS-BFS batches. Writes are disjoint per source: no synchronization.
  MultiSourceDistances(
      g, sources,
      [&](NodeId u, std::span<const Dist> dist) {
        double sum = 0.0;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          if (v == u || !IsReachable(dist[v])) continue;
          sum += 1.0 / static_cast<double>(dist[v]);
        }
        closeness[u] = sum;
      },
      num_threads);
  return closeness;
}

}  // namespace convpairs
