#include "centrality/closeness.h"

#include "sssp/bfs.h"
#include "util/parallel.h"

namespace convpairs {

std::vector<double> HarmonicCloseness(const Graph& g, int num_threads) {
  std::vector<double> closeness(g.num_nodes(), 0.0);
  ParallelForBlocks(
      g.num_nodes(),
      [&](int /*thread_index*/, size_t begin, size_t end) {
        BfsRunner bfs(g);
        for (size_t u = begin; u < end; ++u) {
          const std::vector<Dist>& dist = bfs.Run(static_cast<NodeId>(u));
          double sum = 0.0;
          for (NodeId v = 0; v < g.num_nodes(); ++v) {
            if (v == u || !IsReachable(dist[v])) continue;
            sum += 1.0 / static_cast<double>(dist[v]);
          }
          closeness[u] = sum;
        }
      },
      num_threads);
  return closeness;
}

}  // namespace convpairs
