// Degree-based centrality features over one or two snapshots.
//
// These are the features behind the paper's Degree / DegDiff / DegRel
// selection policies and part of the classifier feature set.

#ifndef CONVPAIRS_CENTRALITY_DEGREE_H_
#define CONVPAIRS_CENTRALITY_DEGREE_H_

#include <vector>

#include "graph/graph.h"

namespace convpairs {

/// deg_t1(u) for every node.
[[nodiscard]] std::vector<double> DegreeScores(const Graph& g1);

/// deg_t2(u) - deg_t1(u): absolute degree growth between snapshots.
[[nodiscard]] std::vector<double> DegreeDiffScores(const Graph& g1,
                                                   const Graph& g2);

/// (deg_t2(u) - deg_t1(u)) / deg_t1(u): relative degree growth. Nodes absent
/// from G_t1 (degree 0) use a denominator of 1 so newly arrived nodes rank
/// by their raw growth instead of dividing by zero.
[[nodiscard]] std::vector<double> DegreeRelScores(const Graph& g1,
                                                  const Graph& g2);

/// Returns the indices of the `count` largest scores, ties broken by lower
/// node id (deterministic). `count` is clamped to scores.size().
[[nodiscard]] std::vector<NodeId> TopKByScore(const std::vector<double>& scores,
                                              size_t count);

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_DEGREE_H_
