// Exact betweenness centrality (Brandes' algorithm), node and edge variants.
//
// The Incidence baseline of [14] ranks active nodes by the betweenness of
// their incident edges; the paper's comparison grants it *exact* edge
// betweenness ("we used the actual edge betweenness centrality, giving an
// advantage to the Incidence algorithm"), which this module provides.
// Unweighted only (one BFS per source); O(n m) total.

#ifndef CONVPAIRS_CENTRALITY_BRANDES_H_
#define CONVPAIRS_CENTRALITY_BRANDES_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"

namespace convpairs {

/// Node betweenness for every node (undirected convention: each unordered
/// pair counted once).
[[nodiscard]] std::vector<double> NodeBetweenness(const Graph& g,
                                                  int num_threads = 0);

/// Edge betweenness. Result maps the packed key EdgeKey(u,v) (u < v) to the
/// edge's betweenness score.
class EdgeBetweenness {
 public:
  /// Computes exact edge betweenness of `g`.
  [[nodiscard]] static EdgeBetweenness Compute(const Graph& g,
                                               int num_threads = 0);

  /// Score of edge {u, v}; 0.0 if the edge is absent.
  [[nodiscard]] double Get(NodeId u, NodeId v) const;

  /// Sum of scores over all edges incident to `u` in `g`.
  [[nodiscard]] double IncidentSum(const Graph& g, NodeId u) const;

  /// Packs an unordered pair into a 64-bit key.
  [[nodiscard]] static uint64_t EdgeKey(NodeId u, NodeId v);

  /// Wraps an externally accumulated score map (used by the sampled
  /// estimator; keys must come from EdgeKey).
  static EdgeBetweenness FromScores(std::unordered_map<uint64_t, double> map);

 private:
  std::unordered_map<uint64_t, double> scores_;
};

/// One Brandes source sweep: adds source `s`'s per-edge dependency
/// contributions into `edge_delta` (keyed by EdgeBetweenness::EdgeKey).
/// Exact betweenness = half the sum of these over all sources; the sampled
/// estimator rescales a subset. Exposed for estimators and tests.
void AccumulateEdgeDependencies(const Graph& g, NodeId s,
                                std::unordered_map<uint64_t, double>* edge_delta);

}  // namespace convpairs

#endif  // CONVPAIRS_CENTRALITY_BRANDES_H_
