#include "centrality/degree.h"

#include <algorithm>

#include "util/check.h"

namespace convpairs {

std::vector<double> DegreeScores(const Graph& g1) {
  std::vector<double> scores(g1.num_nodes());
  for (NodeId u = 0; u < g1.num_nodes(); ++u) scores[u] = g1.degree(u);
  return scores;
}

std::vector<double> DegreeDiffScores(const Graph& g1, const Graph& g2) {
  CONVPAIRS_CHECK_LE(g1.num_nodes(), g2.num_nodes());
  std::vector<double> scores(g2.num_nodes());
  for (NodeId u = 0; u < g2.num_nodes(); ++u) {
    double d1 = u < g1.num_nodes() ? g1.degree(u) : 0.0;
    scores[u] = g2.degree(u) - d1;
  }
  return scores;
}

std::vector<double> DegreeRelScores(const Graph& g1, const Graph& g2) {
  CONVPAIRS_CHECK_LE(g1.num_nodes(), g2.num_nodes());
  std::vector<double> scores(g2.num_nodes());
  for (NodeId u = 0; u < g2.num_nodes(); ++u) {
    double d1 = u < g1.num_nodes() ? g1.degree(u) : 0.0;
    double denom = d1 > 0 ? d1 : 1.0;
    scores[u] = (g2.degree(u) - d1) / denom;
  }
  return scores;
}

std::vector<NodeId> TopKByScore(const std::vector<double>& scores,
                                size_t count) {
  count = std::min(count, scores.size());
  std::vector<NodeId> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<NodeId>(i);
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(count);
  return order;
}

}  // namespace convpairs
