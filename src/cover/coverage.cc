#include "cover/coverage.h"

#include <unordered_set>
#include <vector>

namespace convpairs {

uint64_t CoveredPairCount(const PairGraph& pair_graph,
                          std::span<const NodeId> candidates) {
  std::vector<bool> covered(pair_graph.num_pairs(), false);
  uint64_t count = 0;
  for (NodeId u : candidates) {
    for (uint32_t pair_idx : pair_graph.IncidentPairs(u)) {
      if (!covered[pair_idx]) {
        covered[pair_idx] = true;
        ++count;
      }
    }
  }
  return count;
}

double CoverageFraction(const PairGraph& pair_graph,
                        std::span<const NodeId> candidates) {
  if (pair_graph.num_pairs() == 0) return 1.0;
  return static_cast<double>(CoveredPairCount(pair_graph, candidates)) /
         static_cast<double>(pair_graph.num_pairs());
}

double EndpointHitRate(const PairGraph& pair_graph,
                       std::span<const NodeId> candidates) {
  if (candidates.empty()) return 0.0;
  uint64_t hits = 0;
  for (NodeId u : candidates) {
    if (pair_graph.IsEndpoint(u)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(candidates.size());
}

double SetHitRate(std::span<const NodeId> reference,
                  std::span<const NodeId> candidates) {
  if (candidates.empty()) return 0.0;
  std::unordered_set<NodeId> reference_set(reference.begin(), reference.end());
  uint64_t hits = 0;
  for (NodeId u : candidates) {
    if (reference_set.count(u) > 0) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(candidates.size());
}

}  // namespace convpairs
