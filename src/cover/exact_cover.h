// Exact minimum vertex cover of small pair graphs (branch and bound).
//
// The greedy cover (cover/greedy_cover.h) carries a ln(k) approximation
// guarantee; this solver audits its actual quality on the Table 3 pair
// graphs whenever the instance is small enough. Standard VC branch and
// bound: pick an uncovered edge, branch on covering it by either endpoint;
// prune at the incumbent. Exponential in the cover size — callers bound it
// with `max_cover_size`.

#ifndef CONVPAIRS_COVER_EXACT_COVER_H_
#define CONVPAIRS_COVER_EXACT_COVER_H_

#include <optional>
#include <vector>

#include "cover/pair_graph.h"

namespace convpairs {

/// Minimum vertex cover, or nullopt if every cover exceeds
/// `max_cover_size` (the search budget). Deterministic.
std::optional<std::vector<NodeId>> ExactMinimumVertexCover(
    const PairGraph& pair_graph, size_t max_cover_size = 24);

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_EXACT_COVER_H_
