#include "cover/exact_cover.h"

#include <algorithm>

#include "util/check.h"

namespace convpairs {
namespace {

// Branch and bound over the pair list. `chosen` is the current partial
// cover; returns the best complete cover found within `budget` additional
// picks, or nullopt.
struct Searcher {
  const PairGraph& pg;
  std::vector<NodeId> chosen;
  std::optional<std::vector<NodeId>> best;

  bool Covered(const ConvergingPair& pair,
               const std::vector<bool>& in_cover) const {
    return in_cover[pair.u] || in_cover[pair.v];
  }

  void Search(std::vector<bool>& in_cover, size_t budget) {
    if (best.has_value() && chosen.size() + 1 > best->size()) {
      // Even one more pick cannot beat the incumbent... handled below via
      // budget; the explicit check keeps the pruning tight.
    }
    // Find the first uncovered pair.
    const ConvergingPair* uncovered = nullptr;
    for (const ConvergingPair& pair : pg.pairs()) {
      if (!Covered(pair, in_cover)) {
        uncovered = &pair;
        break;
      }
    }
    if (uncovered == nullptr) {
      if (!best.has_value() || chosen.size() < best->size()) {
        best = chosen;
        std::sort(best->begin(), best->end());
      }
      return;
    }
    if (budget == 0) return;  // Cannot cover the remaining edge.
    if (best.has_value() && chosen.size() + 1 >= best->size()) return;

    // Branch: every cover must contain u or v of the uncovered pair.
    for (NodeId endpoint : {uncovered->u, uncovered->v}) {
      chosen.push_back(endpoint);
      in_cover[endpoint] = true;
      Search(in_cover, budget - 1);
      in_cover[endpoint] = false;
      chosen.pop_back();
    }
  }
};

}  // namespace

std::optional<std::vector<NodeId>> ExactMinimumVertexCover(
    const PairGraph& pair_graph, size_t max_cover_size) {
  if (pair_graph.num_pairs() == 0) return std::vector<NodeId>{};
  NodeId max_node = 0;
  for (const ConvergingPair& pair : pair_graph.pairs()) {
    max_node = std::max(max_node, pair.v);
  }
  std::vector<bool> in_cover(max_node + 1, false);
  Searcher searcher{pair_graph, {}, std::nullopt};
  searcher.Search(in_cover, max_cover_size);
  return searcher.best;
}

}  // namespace convpairs
