#include "cover/pair_graph.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace convpairs {

PairGraph::PairGraph(std::vector<ConvergingPair> pairs)
    : pairs_(std::move(pairs)) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(pairs_.size() * 2);
  for (ConvergingPair& p : pairs_) {
    if (p.u > p.v) std::swap(p.u, p.v);
    CONVPAIRS_CHECK_NE(p.u, p.v);
    uint64_t key = (static_cast<uint64_t>(p.u) << 32) | p.v;
    CONVPAIRS_CHECK(seen.insert(key).second);  // Top-k pairs form a set.
  }
  for (uint32_t i = 0; i < pairs_.size(); ++i) {
    incidence_[pairs_[i].u].push_back(i);
    incidence_[pairs_[i].v].push_back(i);
  }
  endpoints_.reserve(incidence_.size());
  for (const auto& [node, incident] : incidence_) endpoints_.push_back(node);
  std::sort(endpoints_.begin(), endpoints_.end());
}

std::span<const uint32_t> PairGraph::IncidentPairs(NodeId u) const {
  auto it = incidence_.find(u);
  if (it == incidence_.end()) return {};
  return it->second;
}

bool PairGraph::IsEndpoint(NodeId u) const {
  return incidence_.find(u) != incidence_.end();
}

}  // namespace convpairs
