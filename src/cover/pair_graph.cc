#include "cover/pair_graph.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace convpairs {

PairGraph::PairGraph(std::vector<ConvergingPair> pairs)
    : pairs_(std::move(pairs)) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(pairs_.size() * 2);
  for (ConvergingPair& p : pairs_) {
    if (p.u > p.v) std::swap(p.u, p.v);
    CONVPAIRS_CHECK_NE(p.u, p.v);
    uint64_t key = (static_cast<uint64_t>(p.u) << 32) | p.v;
    CONVPAIRS_CHECK(seen.insert(key).second);  // Top-k pairs form a set.
  }

  // CSR build: collect endpoints, sort/unique, then counting-sort the
  // incidences into one flat array (two passes, no per-node vectors).
  endpoints_.reserve(pairs_.size() * 2);
  for (const ConvergingPair& p : pairs_) {
    endpoints_.push_back(p.u);
    endpoints_.push_back(p.v);
  }
  std::sort(endpoints_.begin(), endpoints_.end());
  endpoints_.erase(std::unique(endpoints_.begin(), endpoints_.end()),
                   endpoints_.end());

  offsets_.assign(endpoints_.size() + 1, 0);
  for (const ConvergingPair& p : pairs_) {
    ++offsets_[EndpointIndex(p.u) + 1];
    ++offsets_[EndpointIndex(p.v) + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];
  incidence_.resize(2 * pairs_.size());
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < pairs_.size(); ++i) {
    incidence_[cursor[EndpointIndex(pairs_[i].u)]++] = i;
    incidence_[cursor[EndpointIndex(pairs_[i].v)]++] = i;
  }
}

size_t PairGraph::EndpointIndex(NodeId u) const {
  auto it = std::lower_bound(endpoints_.begin(), endpoints_.end(), u);
  if (it == endpoints_.end() || *it != u) return endpoints_.size();
  return static_cast<size_t>(it - endpoints_.begin());
}

std::span<const uint32_t> PairGraph::IncidentPairs(NodeId u) const {
  const size_t index = EndpointIndex(u);
  if (index == endpoints_.size()) return {};
  return IncidentPairsAt(index);
}

bool PairGraph::IsEndpoint(NodeId u) const {
  return EndpointIndex(u) != endpoints_.size();
}

}  // namespace convpairs
