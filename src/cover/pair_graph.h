// The pair graph G^p_k (paper Section 3).
//
// Given the set P of top-k converging pairs, G^p_k has an edge (u,v) for
// every pair in P. A vertex cover of G^p_k is exactly a candidate set whose
// SSSP rows recover all of P; the budgeted problem (Problem 2) is
// max-coverage of its edges. This module stores P in CSR form — a sorted
// endpoint array plus a flat incidence array with prefix offsets — so
// million-pair instances cost two contiguous arrays instead of a hash map
// of vectors, incidence scans are cache-linear, and cover algorithms can
// index endpoints by dense position.

#ifndef CONVPAIRS_COVER_PAIR_GRAPH_H_
#define CONVPAIRS_COVER_PAIR_GRAPH_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace convpairs {

/// Immutable edge set over the converging pairs, indexed by endpoint.
class PairGraph {
 public:
  PairGraph() = default;

  /// Builds from the top-k pair set. Pairs are normalized to u < v;
  /// duplicates are rejected (the top-k set is a set).
  explicit PairGraph(std::vector<ConvergingPair> pairs);

  size_t num_pairs() const { return pairs_.size(); }
  const std::vector<ConvergingPair>& pairs() const { return pairs_; }

  /// Distinct endpoint nodes, sorted ascending ("endpoints" column of the
  /// paper's Table 3).
  const std::vector<NodeId>& endpoints() const { return endpoints_; }

  /// Indices into pairs() of the pairs incident to `u` (empty if `u` is not
  /// an endpoint). O(log |endpoints|) lookup, contiguous result.
  std::span<const uint32_t> IncidentPairs(NodeId u) const;

  /// Incidence of endpoints()[index] — the O(1) positional accessor cover
  /// algorithms use once they carry dense endpoint positions.
  std::span<const uint32_t> IncidentPairsAt(size_t index) const {
    return std::span<const uint32_t>(incidence_)
        .subspan(offsets_[index], offsets_[index + 1] - offsets_[index]);
  }

  /// True if `u` is an endpoint of at least one pair.
  bool IsEndpoint(NodeId u) const;

 private:
  /// Position of `u` in endpoints(), or endpoints().size() when absent.
  size_t EndpointIndex(NodeId u) const;

  std::vector<ConvergingPair> pairs_;
  std::vector<NodeId> endpoints_;     // Sorted, unique.
  std::vector<uint32_t> offsets_;     // endpoints_.size() + 1 prefix sums.
  std::vector<uint32_t> incidence_;   // Pair indices, grouped by endpoint.
};

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_PAIR_GRAPH_H_
