// The pair graph G^p_k (paper Section 3).
//
// Given the set P of top-k converging pairs, G^p_k has an edge (u,v) for
// every pair in P. A vertex cover of G^p_k is exactly a candidate set whose
// SSSP rows recover all of P; the budgeted problem (Problem 2) is
// max-coverage of its edges. This module stores P with per-node incidence
// lists so cover and coverage queries are O(degree).

#ifndef CONVPAIRS_COVER_PAIR_GRAPH_H_
#define CONVPAIRS_COVER_PAIR_GRAPH_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "graph/types.h"

namespace convpairs {

/// Immutable edge set over the converging pairs, indexed by endpoint.
class PairGraph {
 public:
  PairGraph() = default;

  /// Builds from the top-k pair set. Pairs are normalized to u < v;
  /// duplicates are rejected (the top-k set is a set).
  explicit PairGraph(std::vector<ConvergingPair> pairs);

  size_t num_pairs() const { return pairs_.size(); }
  const std::vector<ConvergingPair>& pairs() const { return pairs_; }

  /// Distinct endpoint nodes, sorted ascending ("endpoints" column of the
  /// paper's Table 3).
  const std::vector<NodeId>& endpoints() const { return endpoints_; }

  /// Indices into pairs() of the pairs incident to `u` (empty if `u` is not
  /// an endpoint).
  std::span<const uint32_t> IncidentPairs(NodeId u) const;

  /// True if `u` is an endpoint of at least one pair.
  bool IsEndpoint(NodeId u) const;

 private:
  std::vector<ConvergingPair> pairs_;
  std::vector<NodeId> endpoints_;
  std::unordered_map<NodeId, std::vector<uint32_t>> incidence_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_PAIR_GRAPH_H_
