// Coverage metric (paper Section 5.1): the fraction of true top-k converging
// pairs with at least one endpoint in a candidate set. This is the
// performance measure of every experiment table and figure.

#ifndef CONVPAIRS_COVER_COVERAGE_H_
#define CONVPAIRS_COVER_COVERAGE_H_

#include <cstdint>
#include <span>

#include "cover/pair_graph.h"

namespace convpairs {

/// Number of pairs of `pair_graph` covered by `candidates`.
uint64_t CoveredPairCount(const PairGraph& pair_graph,
                          std::span<const NodeId> candidates);

/// CoveredPairCount / num_pairs, in [0,1]. Returns 1.0 for an empty pair
/// set (there is nothing to miss).
double CoverageFraction(const PairGraph& pair_graph,
                        std::span<const NodeId> candidates);

/// Fraction of `candidates` that are endpoints of some pair
/// (Figure 2(a)'s candidate-quality measure).
double EndpointHitRate(const PairGraph& pair_graph,
                       std::span<const NodeId> candidates);

/// Fraction of `candidates` that belong to `reference` (Figure 2(b), with
/// `reference` = the greedy cover).
double SetHitRate(std::span<const NodeId> reference,
                  std::span<const NodeId> candidates);

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_COVERAGE_H_
