#include "cover/greedy_cover.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace convpairs {
namespace {

// Lazy-greedy max-coverage: scores only decrease as pairs get covered, so a
// stale heap entry can be refreshed and reinserted instead of rescanning all
// nodes each round (standard submodular lazy evaluation).
CoverResult GreedyCoverImpl(const PairGraph& pg, size_t budget) {
  struct Entry {
    uint32_t gain;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;  // Prefer lower ids on ties.
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u : pg.endpoints()) {
    heap.push({static_cast<uint32_t>(pg.IncidentPairs(u).size()), u});
  }
  std::vector<bool> pair_covered(pg.num_pairs(), false);

  auto current_gain = [&](NodeId u) {
    uint32_t gain = 0;
    for (uint32_t pair_idx : pg.IncidentPairs(u)) {
      if (!pair_covered[pair_idx]) ++gain;
    }
    return gain;
  };

  CoverResult result;
  while (result.covered_pairs < pg.num_pairs() && result.nodes.size() < budget &&
         !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    uint32_t gain = current_gain(top.node);
    if (gain == 0) continue;
    if (gain < top.gain) {
      heap.push({gain, top.node});  // Stale; refresh and retry.
      continue;
    }
    result.nodes.push_back(top.node);
    for (uint32_t pair_idx : pg.IncidentPairs(top.node)) {
      if (!pair_covered[pair_idx]) {
        pair_covered[pair_idx] = true;
        ++result.covered_pairs;
      }
    }
  }
  return result;
}

}  // namespace

CoverResult GreedyVertexCover(const PairGraph& pair_graph) {
  CoverResult result =
      GreedyCoverImpl(pair_graph, pair_graph.endpoints().size());
  CONVPAIRS_CHECK_EQ(result.covered_pairs, pair_graph.num_pairs());
  return result;
}

CoverResult GreedyMaxCoverage(const PairGraph& pair_graph, size_t budget) {
  return GreedyCoverImpl(pair_graph, budget);
}

bool IsVertexCover(const PairGraph& pair_graph,
                   const std::vector<NodeId>& nodes) {
  std::vector<bool> covered(pair_graph.num_pairs(), false);
  for (NodeId u : nodes) {
    for (uint32_t pair_idx : pair_graph.IncidentPairs(u)) {
      covered[pair_idx] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

}  // namespace convpairs
