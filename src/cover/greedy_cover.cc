#include "cover/greedy_cover.h"

#include <algorithm>
#include <queue>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"

namespace convpairs {
namespace {

// Rounds = nodes selected; gain evaluations = lazy-heap score refreshes.
// The ratio of the two is the lazy-evaluation win, worth tracking as the
// pair graphs grow.
struct CoverInstruments {
  obs::Counter& runs;
  obs::Counter& rounds_total;
  obs::Counter& gain_evals_total;
  obs::Histogram& rounds_per_run;

  static const CoverInstruments& Get() {
    static const CoverInstruments instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return CoverInstruments{
          registry.GetCounter("cover.greedy.runs"),
          registry.GetCounter("cover.greedy.rounds_total"),
          registry.GetCounter("cover.greedy.gain_evals_total"),
          registry.GetHistogram("cover.greedy.rounds")};
    }();
    return instruments;
  }
};

// Lazy-greedy max-coverage: scores only decrease as pairs get covered, so a
// stale heap entry can be refreshed and reinserted instead of rescanning all
// nodes each round (standard submodular lazy evaluation).
CoverResult GreedyCoverImpl(const PairGraph& pg, size_t budget) {
  obs::ScopedSpan span("cover.greedy");
  struct Entry {
    uint32_t gain;
    NodeId node;
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return node > other.node;  // Prefer lower ids on ties.
    }
  };
  std::priority_queue<Entry> heap;
  for (NodeId u : pg.endpoints()) {
    heap.push({static_cast<uint32_t>(pg.IncidentPairs(u).size()), u});
  }
  std::vector<bool> pair_covered(pg.num_pairs(), false);

  uint64_t gain_evals = 0;
  auto current_gain = [&](NodeId u) {
    ++gain_evals;
    uint32_t gain = 0;
    for (uint32_t pair_idx : pg.IncidentPairs(u)) {
      if (!pair_covered[pair_idx]) ++gain;
    }
    return gain;
  };

  CoverResult result;
  while (result.covered_pairs < pg.num_pairs() && result.nodes.size() < budget &&
         !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    uint32_t gain = current_gain(top.node);
    if (gain == 0) continue;
    if (gain < top.gain) {
      heap.push({gain, top.node});  // Stale; refresh and retry.
      continue;
    }
    result.nodes.push_back(top.node);
    for (uint32_t pair_idx : pg.IncidentPairs(top.node)) {
      if (!pair_covered[pair_idx]) {
        pair_covered[pair_idx] = true;
        ++result.covered_pairs;
      }
    }
  }
  const CoverInstruments& instruments = CoverInstruments::Get();
  instruments.runs.Increment();
  instruments.rounds_total.Add(static_cast<int64_t>(result.nodes.size()));
  instruments.gain_evals_total.Add(static_cast<int64_t>(gain_evals));
  instruments.rounds_per_run.Observe(static_cast<double>(result.nodes.size()));
  return result;
}

}  // namespace

CoverResult GreedyVertexCover(const PairGraph& pair_graph) {
  CoverResult result =
      GreedyCoverImpl(pair_graph, pair_graph.endpoints().size());
  CONVPAIRS_CHECK_EQ(result.covered_pairs, pair_graph.num_pairs());
  return result;
}

CoverResult GreedyMaxCoverage(const PairGraph& pair_graph, size_t budget) {
  return GreedyCoverImpl(pair_graph, budget);
}

bool IsVertexCover(const PairGraph& pair_graph,
                   const std::vector<NodeId>& nodes) {
  std::vector<bool> covered(pair_graph.num_pairs(), false);
  for (NodeId u : nodes) {
    for (uint32_t pair_idx : pair_graph.IncidentPairs(u)) {
      covered[pair_idx] = true;
    }
  }
  return std::all_of(covered.begin(), covered.end(),
                     [](bool c) { return c; });
}

}  // namespace convpairs
