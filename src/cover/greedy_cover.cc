#include "cover/greedy_cover.h"

#include <algorithm>
#include <queue>

#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace convpairs {
namespace {

// Rounds = nodes selected; gain evaluations = marginal-gain recomputations.
// The ratio of the two is the lazy-evaluation win, worth tracking as the
// pair graphs grow.
struct CoverInstruments {
  obs::Counter& celf_runs;
  obs::Counter& celf_rounds_total;
  obs::Counter& celf_gain_evals_total;
  obs::Histogram& celf_rounds_per_run;
  obs::Counter& rescan_runs;
  obs::Counter& rescan_rounds_total;
  obs::Counter& rescan_gain_evals_total;
  obs::Histogram& rescan_rounds_per_run;
  obs::Counter& sketch_runs;
  obs::Counter& sketch_sampled_pairs_total;

  static const CoverInstruments& Get() {
    static const CoverInstruments instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return CoverInstruments{
          registry.GetCounter("cover.celf.runs"),
          registry.GetCounter("cover.celf.rounds_total"),
          registry.GetCounter("cover.celf.gain_evals_total"),
          registry.GetHistogram("cover.celf.rounds"),
          registry.GetCounter("cover.greedy.runs"),
          registry.GetCounter("cover.greedy.rounds_total"),
          registry.GetCounter("cover.greedy.gain_evals_total"),
          registry.GetHistogram("cover.greedy.rounds"),
          registry.GetCounter("cover.sketch.runs"),
          registry.GetCounter("cover.sketch.sampled_pairs_total")};
    }();
    return instruments;
  }
};

// CELF lazy greedy: marginal gains only decrease as pairs get covered, so a
// stale heap entry is refreshed and reinserted instead of rescanning all
// endpoints each round. Exactly matches the re-scan greedy, ties included:
// an accepted pop's fresh gain equals the heap's maximum cached gain, which
// upper-bounds every fresh gain, and equal-gain entries order by position
// (== node id, endpoints are sorted) — any rival with the same fresh gain
// but a stale higher key gets popped, refreshed and reinserted first, after
// which the comparator picks the lower id, just like the oracle's scan.
CoverResult CelfCoverImpl(const PairGraph& pg, size_t budget) {
  obs::ScopedSpan span("cover.celf");
  const std::vector<NodeId>& endpoints = pg.endpoints();
  struct Entry {
    uint32_t gain;
    uint32_t pos;  // Index into endpoints(): dense, and ordered like ids.
    bool operator<(const Entry& other) const {
      if (gain != other.gain) return gain < other.gain;
      return pos > other.pos;  // Prefer lower ids on ties.
    }
  };
  std::priority_queue<Entry> heap;
  for (uint32_t pos = 0; pos < endpoints.size(); ++pos) {
    heap.push({static_cast<uint32_t>(pg.IncidentPairsAt(pos).size()), pos});
  }
  std::vector<uint8_t> pair_covered(pg.num_pairs(), 0);

  uint64_t gain_evals = 0;
  auto current_gain = [&](uint32_t pos) {
    ++gain_evals;
    uint32_t gain = 0;
    for (uint32_t pair_idx : pg.IncidentPairsAt(pos)) {
      gain += pair_covered[pair_idx] == 0 ? 1u : 0u;
    }
    return gain;
  };

  CoverResult result;
  while (result.covered_pairs < pg.num_pairs() &&
         result.nodes.size() < budget && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    uint32_t gain = current_gain(top.pos);
    if (gain == 0) continue;
    if (gain < top.gain) {
      heap.push({gain, top.pos});  // Stale; refresh and retry.
      continue;
    }
    result.nodes.push_back(endpoints[top.pos]);
    for (uint32_t pair_idx : pg.IncidentPairsAt(top.pos)) {
      if (pair_covered[pair_idx] == 0) {
        pair_covered[pair_idx] = 1;
        ++result.covered_pairs;
      }
    }
  }
  const CoverInstruments& instruments = CoverInstruments::Get();
  instruments.celf_runs.Increment();
  instruments.celf_rounds_total.Add(static_cast<int64_t>(result.nodes.size()));
  instruments.celf_gain_evals_total.Add(static_cast<int64_t>(gain_evals));
  instruments.celf_rounds_per_run.Observe(
      static_cast<double>(result.nodes.size()));
  return result;
}

}  // namespace

CoverResult GreedyVertexCover(const PairGraph& pair_graph) {
  CoverResult result =
      CelfCoverImpl(pair_graph, pair_graph.endpoints().size());
  CONVPAIRS_CHECK_EQ(result.covered_pairs, pair_graph.num_pairs());
  return result;
}

CoverResult GreedyMaxCoverage(const PairGraph& pair_graph, size_t budget) {
  return CelfCoverImpl(pair_graph, budget);
}

CoverResult RescanGreedyCover(const PairGraph& pair_graph, size_t budget) {
  obs::ScopedSpan span("cover.greedy");
  const PairGraph& pg = pair_graph;
  const size_t num_endpoints = pg.endpoints().size();
  std::vector<uint8_t> pair_covered(pg.num_pairs(), 0);
  uint64_t gain_evals = 0;

  CoverResult result;
  while (result.covered_pairs < pg.num_pairs() &&
         result.nodes.size() < budget) {
    uint32_t best_gain = 0;
    size_t best_pos = num_endpoints;
    for (size_t pos = 0; pos < num_endpoints; ++pos) {
      ++gain_evals;
      uint32_t gain = 0;
      for (uint32_t pair_idx : pg.IncidentPairsAt(pos)) {
        gain += pair_covered[pair_idx] == 0 ? 1u : 0u;
      }
      // Strict >: the first (lowest-position == lowest-id) maximum wins,
      // matching CELF's tie rule.
      if (gain > best_gain) {
        best_gain = gain;
        best_pos = pos;
      }
    }
    if (best_pos == num_endpoints) break;  // Nothing left to gain.
    result.nodes.push_back(pg.endpoints()[best_pos]);
    for (uint32_t pair_idx : pg.IncidentPairsAt(best_pos)) {
      if (pair_covered[pair_idx] == 0) {
        pair_covered[pair_idx] = 1;
        ++result.covered_pairs;
      }
    }
  }
  const CoverInstruments& instruments = CoverInstruments::Get();
  instruments.rescan_runs.Increment();
  instruments.rescan_rounds_total.Add(
      static_cast<int64_t>(result.nodes.size()));
  instruments.rescan_gain_evals_total.Add(static_cast<int64_t>(gain_evals));
  instruments.rescan_rounds_per_run.Observe(
      static_cast<double>(result.nodes.size()));
  return result;
}

CoverResult SketchedMaxCoverage(const PairGraph& pair_graph, size_t budget,
                                const SketchCoverOptions& options) {
  CONVPAIRS_CHECK_GT(options.sample_rate, 0.0);
  if (options.sample_rate >= 1.0) {
    return GreedyMaxCoverage(pair_graph, budget);
  }
  obs::ScopedSpan span("cover.sketch");
  Rng rng(options.seed);
  std::vector<ConvergingPair> sample;
  sample.reserve(static_cast<size_t>(
      static_cast<double>(pair_graph.num_pairs()) * options.sample_rate));
  for (const ConvergingPair& p : pair_graph.pairs()) {
    if (rng.Bernoulli(options.sample_rate)) sample.push_back(p);
  }
  const CoverInstruments& instruments = CoverInstruments::Get();
  instruments.sketch_runs.Increment();
  instruments.sketch_sampled_pairs_total.Add(
      static_cast<int64_t>(sample.size()));
  if (sample.empty()) {
    // Sample came up empty (tiny input or rate): fall back to the exact
    // variant rather than returning a vacuous pick.
    return GreedyMaxCoverage(pair_graph, budget);
  }
  PairGraph sampled(std::move(sample));
  CoverResult picks = CelfCoverImpl(sampled, budget);
  CoverResult result;
  result.nodes = std::move(picks.nodes);
  result.covered_pairs = CoveredPairCount(pair_graph, result.nodes);
  return result;
}

bool IsVertexCover(const PairGraph& pair_graph,
                   const std::vector<NodeId>& nodes) {
  return CoveredPairCount(pair_graph, nodes) == pair_graph.num_pairs();
}

uint64_t CoveredPairCount(const PairGraph& pair_graph,
                          const std::vector<NodeId>& nodes) {
  std::vector<uint8_t> covered(pair_graph.num_pairs(), 0);
  uint64_t count = 0;
  for (NodeId u : nodes) {
    for (uint32_t pair_idx : pair_graph.IncidentPairs(u)) {
      if (covered[pair_idx] == 0) {
        covered[pair_idx] = 1;
        ++count;
      }
    }
  }
  return count;
}

}  // namespace convpairs
