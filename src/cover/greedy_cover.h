// Greedy vertex cover / max-coverage of the pair graph G^p_k.
//
// Minimum vertex cover and budgeted max-coverage are NP-hard even given
// G^p_k; the paper uses the classic greedy algorithm (log-factor
// approximation for cover, (1 - 1/e) for max-coverage) as the gold-standard
// candidate set: the "maxcover" column of Table 3, the quality reference of
// Figure 2(b), and the positive class of the classifiers.
//
// Three implementations, one contract:
//  - GreedyVertexCover / GreedyMaxCoverage run CELF lazy greedy (Leskovec
//    et al.): marginal gains only ever shrink as pairs get covered
//    (submodularity), so a max-heap entry whose cached gain is stale is
//    refreshed and reinserted instead of rescanning every endpoint each
//    round. Output is *identical* to the re-scan greedy, ties included —
//    the property suite asserts it.
//  - RescanGreedyCover is that re-scan greedy: O(picks × total incidence),
//    kept as the differential oracle and the benchmark baseline.
//  - SketchedMaxCoverage runs CELF on a Bernoulli sample of the pairs — the
//    hypergraph-sketch trick (Nguyen et al.) for million-pair instances —
//    and reports the picked nodes' *exact* coverage on the full graph.
//
// Telemetry: cover.celf.{runs,rounds_total,gain_evals_total,rounds},
// cover.greedy.* (re-scan oracle), cover.sketch.{runs,sampled_pairs_total}.

#ifndef CONVPAIRS_COVER_GREEDY_COVER_H_
#define CONVPAIRS_COVER_GREEDY_COVER_H_

#include <cstdint>
#include <vector>

#include "cover/pair_graph.h"

namespace convpairs {

/// Output of a greedy cover run.
struct CoverResult {
  /// Selected nodes, in greedy pick order.
  std::vector<NodeId> nodes;
  /// Number of pairs covered by `nodes`.
  uint64_t covered_pairs = 0;
};

/// Greedy vertex cover: picks the node covering the most uncovered pairs
/// until every pair is covered. Ties break toward the lower node id.
/// CELF-accelerated; output identical to RescanGreedyCover.
CoverResult GreedyVertexCover(const PairGraph& pair_graph);

/// Budgeted variant: stops after `budget` nodes (or full coverage).
CoverResult GreedyMaxCoverage(const PairGraph& pair_graph, size_t budget);

/// The classic re-scan greedy: every round recomputes every endpoint's
/// marginal gain. O(picks × total incidence) — the differential oracle for
/// CELF and the baseline BM_GreedyCover measures against. Same tie rule.
CoverResult RescanGreedyCover(const PairGraph& pair_graph, size_t budget);

/// Sketch parameters for SketchedMaxCoverage.
struct SketchCoverOptions {
  /// Bernoulli keep-probability per pair.
  double sample_rate = 0.25;
  /// Seed for the deterministic sampling stream.
  uint64_t seed = 0;
};

/// Approximate max-coverage: greedy (CELF) on a Bernoulli sample of the
/// pairs. `covered_pairs` in the result is the picked nodes' exact coverage
/// of the FULL pair graph, so callers can compare against GreedyMaxCoverage
/// directly. With sample_rate >= 1 this is exactly GreedyMaxCoverage.
CoverResult SketchedMaxCoverage(const PairGraph& pair_graph, size_t budget,
                                const SketchCoverOptions& options = {});

/// True if every pair has at least one endpoint in `nodes`.
bool IsVertexCover(const PairGraph& pair_graph,
                   const std::vector<NodeId>& nodes);

/// Number of distinct pairs with at least one endpoint in `nodes`.
uint64_t CoveredPairCount(const PairGraph& pair_graph,
                          const std::vector<NodeId>& nodes);

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_GREEDY_COVER_H_
