// Greedy vertex cover / max-coverage of the pair graph G^p_k.
//
// Minimum vertex cover and budgeted max-coverage are NP-hard even given
// G^p_k; the paper uses the classic greedy algorithm (log-factor
// approximation for cover, (1 - 1/e) for max-coverage) as the gold-standard
// candidate set: the "maxcover" column of Table 3, the quality reference of
// Figure 2(b), and the positive class of the classifiers.

#ifndef CONVPAIRS_COVER_GREEDY_COVER_H_
#define CONVPAIRS_COVER_GREEDY_COVER_H_

#include <cstdint>
#include <vector>

#include "cover/pair_graph.h"

namespace convpairs {

/// Output of a greedy cover run.
struct CoverResult {
  /// Selected nodes, in greedy pick order.
  std::vector<NodeId> nodes;
  /// Number of pairs covered by `nodes`.
  uint64_t covered_pairs = 0;
};

/// Greedy vertex cover: picks the node covering the most uncovered pairs
/// until every pair is covered. Ties break toward the lower node id.
CoverResult GreedyVertexCover(const PairGraph& pair_graph);

/// Budgeted variant: stops after `budget` nodes (or full coverage).
CoverResult GreedyMaxCoverage(const PairGraph& pair_graph, size_t budget);

/// True if every pair has at least one endpoint in `nodes`.
bool IsVertexCover(const PairGraph& pair_graph,
                   const std::vector<NodeId>& nodes);

}  // namespace convpairs

#endif  // CONVPAIRS_COVER_GREEDY_COVER_H_
