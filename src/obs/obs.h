// Umbrella header for the observability subsystem: metric instruments,
// the process-wide registry, the span tracer and the file exporters.
// Instrumented modules normally include just registry.h / trace.h; this
// header is for drivers (benches, CLI) that also export.

#ifndef CONVPAIRS_OBS_OBS_H_
#define CONVPAIRS_OBS_OBS_H_

#include "obs/export.h"          // IWYU pragma: export
#include "obs/flight_recorder.h" // IWYU pragma: export
#include "obs/json.h"            // IWYU pragma: export
#include "obs/metrics.h"         // IWYU pragma: export
#include "obs/registry.h"        // IWYU pragma: export
#include "obs/trace.h"           // IWYU pragma: export
#include "obs/trace_export.h"    // IWYU pragma: export

#endif  // CONVPAIRS_OBS_OBS_H_
