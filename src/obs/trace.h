// RAII span tracer with a bounded in-memory buffer.
//
// ScopedSpan marks a timed region ("experiment.ground_truth",
// "selector.MMSD", ...). Completed spans land in the global TraceBuffer:
// the first kCapacity raw spans are kept verbatim (later ones are counted
// as dropped), while per-name aggregates (count / total / min / max) are
// maintained for *every* span, so aggregate phase timings stay exact even
// on runs with millions of spans. Spans are coarse (phases, policies, whole
// searches at their cheapest) — never per-node or per-edge.
//
// Nesting is tracked per thread: a span records the depth at which it was
// opened, so exports can reconstruct the call tree. Buffer pushes take a
// mutex; that is fine at phase granularity.

#ifndef CONVPAIRS_OBS_TRACE_H_
#define CONVPAIRS_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace convpairs::obs {

/// One completed timed region.
struct SpanRecord {
  std::string name;
  uint64_t start_ns = 0;     // Relative to the process trace epoch.
  uint64_t duration_ns = 0;
  int depth = 0;             // 0 = top-level on its thread.
  int thread_id = 0;         // Small sequential id, not an OS tid.
};

/// Aggregate over every span with the same name (never dropped).
struct SpanStats {
  std::string name;
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
};

struct TraceSnapshot {
  std::vector<SpanRecord> spans;   // At most kCapacity, in completion order.
  std::vector<SpanStats> stats;    // Sorted by name.
  uint64_t dropped = 0;            // Raw spans beyond capacity.
};

class TraceBuffer {
 public:
  static constexpr size_t kCapacity = 4096;

  static TraceBuffer& Global();

  /// Records one completed span (called by ~ScopedSpan).
  void Record(std::string_view name, uint64_t start_ns, uint64_t duration_ns,
              int depth, int thread_id);

  TraceSnapshot Snapshot() const;
  void Reset();

 private:
  struct Aggregate {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t min_ns = UINT64_MAX;
    uint64_t max_ns = 0;
  };

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::map<std::string, Aggregate, std::less<>> stats_;
  uint64_t dropped_ = 0;
};

/// Nanoseconds since the process trace epoch (steady clock; the epoch is
/// fixed the first time any span or caller asks).
uint64_t TraceNowNanos();

/// Small sequential id for the calling thread, stable for its lifetime.
int TraceThreadId();

/// RAII timed region. Construction stamps the start; destruction records
/// the span into TraceBuffer::Global().
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  uint64_t start_ns_;
  int depth_;
};

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_TRACE_H_
