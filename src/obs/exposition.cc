#include "obs/exposition.h"

#include <cctype>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/windowed.h"

namespace convpairs::obs {
namespace {

constexpr std::string_view kPrefix = "convpairs_";

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string FormatValue(int64_t v) { return std::to_string(v); }
std::string FormatValue(uint64_t v) { return std::to_string(v); }

void AppendHeader(std::string& out, const std::string& family,
                  std::string_view type, std::string_view source_name) {
  out += "# HELP ";
  out += family;
  out += " convpairs instrument ";
  out += source_name;
  out += "\n# TYPE ";
  out += family;
  out += ' ';
  out += type;
  out += '\n';
}

/// One merged histogram family body: cumulative `_bucket` series (with an
/// optional extra label like `window="10s"`), then `_sum` and `_count`.
void AppendHistogramSeries(std::string& out, const std::string& family,
                           const HistogramSample& sample,
                           const std::string& extra_label) {
  uint64_t cumulative = 0;
  for (size_t i = 0; i < sample.buckets.size(); ++i) {
    cumulative += sample.buckets[i];
    out += family;
    out += "_bucket{";
    if (!extra_label.empty()) {
      out += extra_label;
      out += ',';
    }
    out += "le=\"";
    out += i < sample.bounds.size() ? FormatValue(sample.bounds[i]) : "+Inf";
    out += "\"} ";
    out += FormatValue(cumulative);
    out += '\n';
  }
  out += family;
  out += "_sum";
  if (!extra_label.empty()) {
    out += '{';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += FormatValue(sample.sum);
  out += '\n';
  out += family;
  out += "_count";
  if (!extra_label.empty()) {
    out += '{';
    out += extra_label;
    out += '}';
  }
  out += ' ';
  out += FormatValue(sample.count);
  out += '\n';
}

std::string WindowLabel(const WindowedHistogramSample& sample,
                        int64_t epochs) {
  double seconds = static_cast<double>(epochs) *
                   static_cast<double>(sample.epoch_nanos) / 1e9;
  return "window=\"" + FormatValue(seconds) + "s\"";
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(kPrefix.size() + name.size());
  out += kPrefix;
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_'
               ? c
               : '_';
  }
  return out;
}

std::string WriteExposition(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string family = SanitizeMetricName(name);
    AppendHeader(out, family, "counter", name);
    out += family;
    out += ' ';
    out += FormatValue(value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string family = SanitizeMetricName(name);
    AppendHeader(out, family, "gauge", name);
    out += family;
    out += ' ';
    out += FormatValue(value);
    out += '\n';
  }
  for (const HistogramSample& sample : snapshot.histograms) {
    std::string family = SanitizeMetricName(sample.name);
    AppendHeader(out, family, "histogram", sample.name);
    AppendHistogramSeries(out, family, sample, "");
  }
  for (const WindowedHistogramSample& sample : snapshot.windowed) {
    std::string family = SanitizeMetricName(sample.name);
    AppendHeader(out, family, "histogram", sample.name);
    AppendHistogramSeries(out, family, sample.cumulative, "");

    std::string window_family = family + "_window";
    AppendHeader(out, window_family, "histogram", sample.name);
    for (const auto& window : sample.windows) {
      AppendHistogramSeries(out, window_family, window.merged,
                            WindowLabel(sample, window.epochs));
    }

    std::string quantile_family = family + "_quantile";
    AppendHeader(out, quantile_family, "gauge", sample.name);
    for (const auto& window : sample.windows) {
      for (double q : {50.0, 99.0, 99.9}) {
        out += quantile_family;
        out += '{';
        out += WindowLabel(sample, window.epochs);
        out += ",quantile=\"";
        out += FormatValue(q / 100.0);
        out += "\"} ";
        out += FormatValue(SamplePercentile(window.merged, q));
        out += '\n';
      }
    }

    std::string dropped_family = family + "_rotation_dropped";
    AppendHeader(out, dropped_family, "counter", sample.name);
    out += dropped_family;
    out += ' ';
    out += FormatValue(sample.rotation_dropped);
    out += '\n';
  }
  return out;
}

std::string WriteGlobalExposition() {
  return WriteExposition(MetricsRegistry::Global().Snapshot());
}

}  // namespace convpairs::obs
