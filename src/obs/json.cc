#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace convpairs::obs {
namespace {

constexpr int kMaxParseDepth = 64;

void AppendIndent(std::string& out, int indent) {
  out.append(static_cast<size_t>(indent) * 2, ' ');
}

// Serializes a finite double: integers without a fraction, everything else
// with enough digits to round-trip.
void AppendNumber(std::string& out, double v) {
  CONVPAIRS_CHECK(std::isfinite(v));
  char buf[32];
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Run() {
    StatusOr<JsonValue> value = ParseValue(0);
    if (!value.ok()) return value;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') return ParseString();
    if (ConsumeLiteral("true")) return JsonValue(true);
    if (ConsumeLiteral("false")) return JsonValue(false);
    if (ConsumeLiteral("null")) return JsonValue();
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue object = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return object;
    while (true) {
      SkipWhitespace();
      StatusOr<JsonValue> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      object.Set(key->GetString(), std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return object;
      return Error("expected ',' or '}' in object");
    }
  }

  StatusOr<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue array = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return array;
    while (true) {
      StatusOr<JsonValue> value = ParseValue(depth + 1);
      if (!value.ok()) return value;
      array.Append(std::move(*value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return array;
      return Error("expected ',' or ']' in array");
    }
  }

  StatusOr<JsonValue> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad hex digit in \\u escape");
          }
          // Basic-plane UTF-8 encoding; surrogate pairs are out of scope
          // for telemetry strings.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Error("expected a value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    return JsonValue(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::GetBool() const {
  CONVPAIRS_CHECK(type_ == Type::kBool);
  return bool_;
}

double JsonValue::GetNumber() const {
  CONVPAIRS_CHECK(type_ == Type::kNumber);
  return number_;
}

const std::string& JsonValue::GetString() const {
  CONVPAIRS_CHECK(type_ == Type::kString);
  return string_;
}

JsonValue& JsonValue::Set(std::string key, JsonValue value) {
  CONVPAIRS_CHECK(type_ == Type::kObject);
  for (auto& [existing_key, existing_value] : members_) {
    if (existing_key == key) {
      existing_value = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  CONVPAIRS_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [member_key, member_value] : members_) {
    if (member_key == key) return &member_value;
  }
  return nullptr;
}

const JsonValue& JsonValue::At(size_t index) const {
  CONVPAIRS_CHECK(type_ == Type::kArray);
  CONVPAIRS_CHECK_LT(index, array_.size());
  return array_[index];
}

size_t JsonValue::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return members_.size();
  return 0;
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(out, 0);
  out += '\n';
  return out;
}

void JsonValue::SerializeTo(std::string& out, int indent) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      return;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      AppendNumber(out, number_);
      return;
    case Type::kString:
      out += JsonEscape(string_);
      return;
    case Type::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (size_t i = 0; i < array_.size(); ++i) {
        AppendIndent(out, indent + 1);
        array_[i].SerializeTo(out, indent + 1);
        if (i + 1 < array_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, indent);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (size_t i = 0; i < members_.size(); ++i) {
        AppendIndent(out, indent + 1);
        out += JsonEscape(members_[i].first);
        out += ": ";
        members_[i].second.SerializeTo(out, indent + 1);
        if (i + 1 < members_.size()) out += ',';
        out += '\n';
      }
      AppendIndent(out, indent);
      out += '}';
      return;
    }
  }
}

StatusOr<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).Run();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace convpairs::obs
