// Windowed histogram: tail latency over the last N seconds, not since boot.
//
// Every instrument in metrics.h is cumulative-since-process-start, which is
// the wrong shape for a serving SLO: after an hour of traffic a latency
// regression is invisible under the accumulated mass. WindowedHistogram
// keeps a ring of per-epoch histogram shards (one shard per wall-clock
// second by default). Observe() is lock-free — it derives the current epoch
// from a monotonic clock, claims the ring slot via a CAS-to-sentinel
// rotation protocol if the slot still holds an expired epoch, and then does
// the same relaxed atomic increments a plain Histogram does. Percentile
// queries merge the shards whose epoch falls inside the requested window;
// expired shards simply stop matching and drop out without any background
// thread.
//
// Rotation protocol: a shard's `epoch` field is either a real epoch number
// or the kRotating sentinel. The first observer to land on a slot whose
// epoch is stale CASes it to kRotating, zeroes the shard, then publishes
// the new epoch with a release store. Concurrent observers that lose the
// race retry briefly; if the slot still isn't theirs (rotator preempted
// mid-zero) they drop the windowed increment and bump rotation_dropped() —
// the cumulative view (below) still records the observation, so nothing is
// lost from totals.
//
// Each WindowedHistogram also owns a cumulative Histogram fed on every
// Observe, so exposition can emit both the standard Prometheus cumulative
// histogram series and the windowed percentiles from one instrument.
//
// The clock is injectable (seconds don't tick on demand in tests): pass a
// ClockFn returning nanoseconds, or leave the default (trace.h's
// TraceNowNanos, the steady clock used by every other instrument).

#ifndef CONVPAIRS_OBS_WINDOWED_H_
#define CONVPAIRS_OBS_WINDOWED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace convpairs::obs {

/// Nanosecond monotonic clock used to derive epochs. Injectable for tests.
using ClockFn = uint64_t (*)();

/// One windowed instrument's state at snapshot time: the cumulative view
/// plus one merged sample per configured window.
struct WindowedHistogramSample {
  std::string name;
  uint64_t epoch_nanos = 0;
  uint64_t rotation_dropped = 0;
  HistogramSample cumulative;
  struct Window {
    /// Window length in epochs (== seconds at the default epoch length).
    int64_t epochs = 0;
    HistogramSample merged;
  };
  std::vector<Window> windows;
};

class WindowedHistogram {
 public:
  struct Options {
    /// Epoch (shard granularity) length. Default: one second.
    uint64_t epoch_nanos = 1'000'000'000ull;
    /// Window lengths, in epochs, reported by Sample(). The largest must
    /// fit in the ring (shards = max window + 2 slack slots).
    std::vector<int64_t> window_epochs = {10, 60};
    /// Nanosecond clock; nullptr means TraceNowNanos.
    ClockFn clock = nullptr;
  };

  WindowedHistogram(std::vector<double> bounds, Options options);
  /// Default options: 1s epochs, 10s and 60s windows, steady clock.
  explicit WindowedHistogram(std::vector<double> bounds);

  /// Lock-free: epoch derivation + (rarely) slot rotation + relaxed
  /// increments into the owning shard and the cumulative histogram.
  void Observe(double value);

  /// Merged counts over the trailing `window_epochs` epochs, including the
  /// current partial epoch. min/max are not tracked per shard; the sample's
  /// min/max fields are bucket-derived bounds (0 when empty).
  HistogramSample Window(int64_t window_epochs, std::string name) const;

  /// Percentile over the trailing window via SamplePercentile().
  double WindowPercentile(double p, int64_t window_epochs) const;

  /// Cumulative-since-creation view (identical semantics to Histogram).
  const Histogram& cumulative() const { return cumulative_; }

  /// Windowed increments dropped because a rotation was in flight. The
  /// cumulative view still saw those observations.
  uint64_t rotation_dropped() const {
    return rotation_dropped_.load(std::memory_order_relaxed);
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const Options& options() const { return options_; }

  /// Full snapshot: cumulative + every configured window.
  WindowedHistogramSample Sample(std::string name) const;

  /// Zeroes every shard and the cumulative view; the instrument (and any
  /// cached references) stays valid.
  void Reset();

 private:
  struct Shard {
    /// Epoch this shard's counts belong to, or kRotating mid-zero.
    std::atomic<uint64_t> epoch{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };

  static constexpr uint64_t kRotating = ~0ull;

  uint64_t NowEpoch() const;
  /// Ensures shards_[epoch % shards_.size()] holds `epoch`; returns the
  /// shard if this observer may increment it, nullptr if a rotation was in
  /// flight and the windowed increment should be dropped.
  Shard* ClaimShard(uint64_t epoch);

  std::vector<double> bounds_;
  Options options_;
  ClockFn clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Histogram cumulative_;
  std::atomic<uint64_t> rotation_dropped_{0};
};

/// Percentile estimate from a merged sample, by the same bucket-linear
/// interpolation Histogram::Percentile uses (bounds stand in for min/max
/// when the sample doesn't carry them). Returns 0 when empty.
double SamplePercentile(const HistogramSample& sample, double p);

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_WINDOWED_H_
