// Flight recorder: lock-free per-thread timeline event rings.
//
// ScopedSpan (obs/trace.h) covers coarse phases — a mutex per push is fine
// at that granularity — but the scheduling behaviour of the work-stealing
// pool and the BFS engine (chunk execution, steals, idle waits, level
// boundaries, direction switches, MS-BFS batch occupancy) happens thousands
// of times per second and would melt a mutexed buffer. The flight recorder
// gives every recording thread its own fixed-capacity ring: an append is a
// relaxed-atomic slot write plus a relaxed cursor bump — no locks, no
// allocation, no cross-thread cache traffic on the hot path. When a ring
// wraps, the oldest events are overwritten and counted as dropped (surfaced
// as the `obs.flight.dropped` counters at export time, see trace_export.h).
//
// Recording is OFF by default and the entire hot path hides behind
// FlightRecorder::enabled() — a single relaxed bool load — so instrumented
// code pays nothing (no clock reads, no stores) until a run opts in via
// CONVPAIRS_TRACE_OUT / --trace-out (see trace_export.h) or SetEnabled().
//
// Event kinds are a closed enum (FlightEventKind): the exporter, the
// summary script and the lint invariant all key off it, so new events are
// added here, never as ad-hoc integers at the call site.
//
// Thread-safety: appends are wait-free and may run concurrently with
// Snapshot() from any thread (slots are relaxed atomics; a reader that
// races a wrapping writer may observe a torn slot, which decoding discards
// via the kind-range check). Reset() requires recording threads to be
// quiescent, like MetricsRegistry::Reset().

#ifndef CONVPAIRS_OBS_FLIGHT_RECORDER_H_
#define CONVPAIRS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace convpairs::obs {

/// Every event the flight recorder can carry. Call sites must name these
/// constants directly (lint invariant 7 bans casting raw integers): the
/// Chrome-trace exporter and scripts/trace_summary.py both dispatch on the
/// kind, so an unknown value would silently vanish from the timeline.
enum class FlightEventKind : uint8_t {
  kPoolRegionBegin = 0,  // instant; arg0 = num_chunks, arg1 = items
  kPoolRegionEnd,        // instant; arg0 = num_chunks, arg1 = items
  kPoolRegionInline,     // dur: region degraded to inline; arg1 = items
  kPoolChunk,            // dur: one chunk body; arg0 = chunk id, arg1 = items
  kPoolStealAttempt,     // instant; arg0 = victim seat
  kPoolSteal,            // instant; arg0 = victim seat, arg1 = chunks taken
  kPoolIdle,             // dur: wait before seating / drain at region end
  kBfsLevel,             // dur: one DirOpt level; arg0 = level,
                         //      arg1 = frontier size entering the level
  kDirOptSwitch,         // instant; arg0 = new mode (0 = top-down,
                         //      1 = bottom-up), arg1 = frontier edges
  kMsBfsLevel,           // dur: one MS-BFS level; arg0 = level,
                         //      arg1 = active frontier nodes
  kMsBfsBatch,           // dur: whole batch; arg0 = lane occupancy,
                         //      arg1 = levels run
  kServerRequest,        // dur: one server request, parse to reply ready;
                         //      arg0 = verb (protocol.h RequestVerb),
                         //      arg1 = 1 when the reply is an ERR
  kServerBatch,          // dur: one batcher flush; arg0 = unique sources
                         //      (lanes), arg1 = queries resolved
  kServerStage,          // dur: one request stage; arg0 = stage
                         //      (request_context.h RequestStage),
                         //      arg1 = verb (protocol.h RequestVerb)
  kNumKinds,             // sentinel, not a recordable kind
};

/// Stable lower-case dotted name ("pool.chunk", "bfs.level", ...) used as
/// the Chrome trace event name. Returns "invalid" for out-of-range values.
std::string_view FlightEventKindName(FlightEventKind kind);

/// One decoded event (snapshot-side representation).
struct FlightEvent {
  uint64_t ts_ns = 0;   // Start, relative to the process trace epoch.
  uint64_t dur_ns = 0;  // 0 for instant events.
  FlightEventKind kind = FlightEventKind::kNumKinds;
  uint32_t arg0 = 0;
  uint64_t arg1 = 0;
};

/// One thread's ring at snapshot time, oldest event first.
struct FlightLaneSnapshot {
  int lane = 0;        // Recorder lane index (stable per thread).
  int thread_id = 0;   // TraceThreadId() of the owning thread.
  uint64_t recorded = 0;  // Lifetime events appended to this lane.
  uint64_t dropped = 0;   // Events overwritten by ring wrap.
  std::vector<FlightEvent> events;
};

struct FlightSnapshot {
  bool enabled = false;
  std::vector<FlightLaneSnapshot> lanes;  // Only lanes that recorded.
  uint64_t dropped_total = 0;     // Wraps across lanes + overflow threads.
  uint64_t overflow_dropped = 0;  // Events from threads beyond kMaxLanes.
};

class FlightRecorder {
 public:
  /// Events per lane ring. 8192 × 32 B = 256 KiB per recording thread,
  /// allocated lazily on the thread's first event.
  static constexpr size_t kLaneCapacity = 8192;
  /// Distinct recording threads; later threads count into overflow_dropped.
  static constexpr int kMaxLanes = 64;

  static FlightRecorder& Global();

  /// The zero-cost-when-disabled guard. Instrumented code must check this
  /// before reading clocks or computing arguments.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's lane. Wait-free; no-op when
  /// recording is disabled. `ts_ns` is TraceNowNanos()-relative.
  static void Record(FlightEventKind kind, uint64_t ts_ns, uint64_t dur_ns,
                     uint32_t arg0 = 0, uint64_t arg1 = 0) {
    if (!enabled()) return;
    Global().RecordImpl(kind, ts_ns, dur_ns, arg0, arg1);
  }

  FlightSnapshot Snapshot() const;

  /// Zeroes every lane's cursor and drop counts. Lane↔thread assignments
  /// survive so recording threads keep their rings. Callers must ensure no
  /// thread is appending concurrently.
  void Reset();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  // A slot is four relaxed-atomic words: ts, dur, (arg0 << 32 | kind),
  // arg1. Relaxed atomics compile to plain stores on every target we build
  // for, while keeping concurrent Snapshot() reads defined behaviour.
  struct Slot {
    std::atomic<uint64_t> ts{0};
    std::atomic<uint64_t> dur{0};
    std::atomic<uint64_t> meta{0};
    std::atomic<uint64_t> arg1{0};
  };

  struct alignas(64) Lane {
    // Monotonic append count; slot index = count % kLaneCapacity, and
    // dropped = max(0, count - kLaneCapacity). Single writer (the owning
    // thread); Snapshot() reads with acquire.
    std::atomic<uint64_t> cursor{0};
    std::atomic<int> thread_id{-1};
    std::atomic<Slot*> slots{nullptr};  // Lazily allocated ring.
  };

  FlightRecorder();
  ~FlightRecorder() = default;

  void RecordImpl(FlightEventKind kind, uint64_t ts_ns, uint64_t dur_ns,
                  uint32_t arg0, uint64_t arg1);
  int LaneForThisThread();

  static std::atomic<bool> enabled_;

  std::unique_ptr<Lane[]> lanes_;       // kMaxLanes entries.
  std::atomic<int> next_lane_{0};
  std::atomic<uint64_t> overflow_dropped_{0};
};

/// RAII duration event: stamps the start at construction and records
/// `kind` with the elapsed time at destruction. All cost (both clock
/// reads included) vanishes when recording is disabled at construction.
class FlightScope {
 public:
  explicit FlightScope(FlightEventKind kind, uint32_t arg0 = 0,
                       uint64_t arg1 = 0);
  ~FlightScope();

  /// Updates arg1 before the event is recorded (e.g. items actually done).
  void set_arg1(uint64_t arg1) { arg1_ = arg1; }

  FlightScope(const FlightScope&) = delete;
  FlightScope& operator=(const FlightScope&) = delete;

 private:
  FlightEventKind kind_;
  uint32_t arg0_;
  uint64_t arg1_;
  uint64_t start_ns_;  // UINT64_MAX when recording was off at construction.
};

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_FLIGHT_RECORDER_H_
