// Prometheus-compatible text exposition for a MetricsSnapshot.
//
// This is the wire format behind the server's METRICS verb: any scraper
// (or scripts/slo_report.py) can poll a live convpairs_server and get the
// whole registry — counters, gauges, cumulative histograms, and the
// windowed SLO instruments — as `# TYPE`-annotated plain text.
//
// Mapping (all family names are sanitized and prefixed `convpairs_`):
//   counter  "server.errors"        -> convpairs_server_errors <v>
//   gauge    "server.sessions"      -> convpairs_server_sessions <v>
//   histogram "x"                   -> convpairs_x_bucket{le="..."} (cumulative
//                                      counts, ascending, then le="+Inf"),
//                                      convpairs_x_sum, convpairs_x_count
//   windowed "server.stage.scan.latency_us" ->
//     convpairs_server_stage_scan_latency_us_*          (cumulative view)
//     convpairs_..._window_bucket{window="10s",le="..."} (+ _sum/_count per
//                                                        window label)
//     convpairs_..._quantile{window="10s",quantile="0.99"} (p50/p99/p999
//                                                        gauges per window)
//     convpairs_..._rotation_dropped                     (counter)
//
// The format is the subset of the Prometheus text format v0.0.4 that
// slo_report.py validates: HELP/TYPE comments, optional labels, floating
// point values, no timestamps.

#ifndef CONVPAIRS_OBS_EXPOSITION_H_
#define CONVPAIRS_OBS_EXPOSITION_H_

#include <string>
#include <string_view>

#include "obs/registry.h"

namespace convpairs::obs {

/// `name` with every character outside [a-zA-Z0-9_] replaced by '_', and a
/// leading digit guarded — the Prometheus metric-name charset.
std::string SanitizeMetricName(std::string_view name);

/// Renders the whole snapshot in Prometheus text exposition format.
std::string WriteExposition(const MetricsSnapshot& snapshot);

/// Convenience: snapshot the global registry and render it.
std::string WriteGlobalExposition();

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_EXPOSITION_H_
