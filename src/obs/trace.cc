#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "obs/registry.h"

namespace convpairs::obs {
namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

thread_local int tls_depth = 0;

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - TraceEpoch())
          .count());
}

int TraceThreadId() {
  static std::atomic<int> next_id{0};
  thread_local const int id = next_id.fetch_add(1);
  return id;
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();  // Never freed.
  return *buffer;
}

void TraceBuffer::Record(std::string_view name, uint64_t start_ns,
                         uint64_t duration_ns, int depth, int thread_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(name);
  if (it == stats_.end()) it = stats_.emplace(std::string(name), Aggregate{}).first;
  Aggregate& agg = it->second;
  agg.count += 1;
  agg.total_ns += duration_ns;
  if (duration_ns < agg.min_ns) agg.min_ns = duration_ns;
  if (duration_ns > agg.max_ns) agg.max_ns = duration_ns;

  if (spans_.size() >= kCapacity) {
    dropped_ += 1;
    // Surface truncation in every metrics export, not just TraceSnapshot:
    // BENCH_*.json readers check obs.trace.dropped to learn the raw span
    // list is incomplete (aggregates in `stats` stay exact regardless).
    static Counter& dropped_counter =
        MetricsRegistry::Global().GetCounter("obs.trace.dropped");
    dropped_counter.Increment();
    return;
  }
  SpanRecord record;
  record.name = std::string(name);
  record.start_ns = start_ns;
  record.duration_ns = duration_ns;
  record.depth = depth;
  record.thread_id = thread_id;
  spans_.push_back(std::move(record));
}

TraceSnapshot TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSnapshot snapshot;
  snapshot.spans = spans_;
  snapshot.stats.reserve(stats_.size());
  for (const auto& [name, agg] : stats_) {
    SpanStats stats;
    stats.name = name;
    stats.count = agg.count;
    stats.total_ns = agg.total_ns;
    stats.min_ns = agg.count == 0 ? 0 : agg.min_ns;
    stats.max_ns = agg.max_ns;
    snapshot.stats.push_back(std::move(stats));
  }
  snapshot.dropped = dropped_;
  return snapshot;
}

void TraceBuffer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  stats_.clear();
  dropped_ = 0;
}

ScopedSpan::ScopedSpan(std::string_view name)
    : name_(name), start_ns_(TraceNowNanos()), depth_(tls_depth) {
  ++tls_depth;
}

ScopedSpan::~ScopedSpan() {
  --tls_depth;
  TraceBuffer::Global().Record(name_, start_ns_, TraceNowNanos() - start_ns_,
                               depth_, TraceThreadId());
}

}  // namespace convpairs::obs
