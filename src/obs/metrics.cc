#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace convpairs::obs {
namespace {

// Relaxed CAS-max/min for doubles; called once per Observe, not per element.
void AtomicMin(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CONVPAIRS_CHECK(!bounds_.empty());
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CONVPAIRS_CHECK_LT(bounds_[i - 1], bounds_[i]);
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
  min_.store(std::numeric_limits<double>::infinity());
  max_.store(-std::numeric_limits<double>::infinity());
}

void Histogram::Observe(double value) {
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

uint64_t Histogram::BucketCount(size_t i) const {
  CONVPAIRS_CHECK_LE(i, bounds_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::Percentile(double p) const {
  CONVPAIRS_CHECK_GE(p, 0.0);
  CONVPAIRS_CHECK_LE(p, 100.0);
  const uint64_t total = count();
  if (total == 0) return 0.0;
  // Rank of the requested percentile, 1-based, nearest-rank then
  // interpolated within the owning bucket.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 * total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      double lo = i == 0 ? std::min(min_.load(std::memory_order_relaxed),
                                    bounds_.front())
                         : bounds_[i - 1];
      double hi = i == bounds_.size()
                      ? std::max(max_.load(std::memory_order_relaxed),
                                 bounds_.back())
                      : bounds_[i];
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  return max_.load(std::memory_order_relaxed);
}

HistogramSample Histogram::Sample(std::string name) const {
  HistogramSample sample;
  sample.name = std::move(name);
  sample.bounds = bounds_;
  sample.buckets.resize(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    sample.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  sample.count = count();
  sample.sum = sum();
  sample.min = sample.count == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
  sample.max = sample.count == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
  return sample;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       int count) {
  CONVPAIRS_CHECK_GT(start, 0.0);
  CONVPAIRS_CHECK_GT(factor, 1.0);
  CONVPAIRS_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width, int count) {
  CONVPAIRS_CHECK_GT(width, 0.0);
  CONVPAIRS_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + width * i);
  }
  return bounds;
}

}  // namespace convpairs::obs
