#include "obs/export.h"

#include <cstdio>
#include <cstdlib>

namespace convpairs::obs {
namespace {

constexpr int kSchemaVersion = 1;

JsonValue BuildInfo() {
  JsonValue build = JsonValue::Object();
#if defined(__VERSION__)
  build.Set("compiler", std::string("gcc/clang ") + __VERSION__);
#else
  build.Set("compiler", "unknown");
#endif
#if defined(NDEBUG)
  build.Set("assertions", false);
#else
  build.Set("assertions", true);
#endif
  build.Set("pointer_bits", static_cast<int64_t>(sizeof(void*) * 8));
  return build;
}

JsonValue HistogramToJson(const HistogramSample& sample) {
  JsonValue hist = JsonValue::Object();
  hist.Set("count", static_cast<int64_t>(sample.count));
  hist.Set("sum", sample.sum);
  hist.Set("min", sample.min);
  hist.Set("max", sample.max);
  hist.Set("mean", sample.count == 0
                       ? 0.0
                       : sample.sum / static_cast<double>(sample.count));
  JsonValue buckets = JsonValue::Array();
  for (size_t i = 0; i < sample.buckets.size(); ++i) {
    JsonValue bucket = JsonValue::Object();
    if (i < sample.bounds.size()) {
      bucket.Set("le", sample.bounds[i]);
    } else {
      bucket.Set("le", "inf");
    }
    bucket.Set("count", static_cast<int64_t>(sample.buckets[i]));
    buckets.Append(std::move(bucket));
  }
  hist.Set("buckets", std::move(buckets));
  return hist;
}

JsonValue WindowedToJson(const WindowedHistogramSample& sample) {
  JsonValue windowed = JsonValue::Object();
  windowed.Set("epoch_nanos", static_cast<int64_t>(sample.epoch_nanos));
  windowed.Set("rotation_dropped",
               static_cast<int64_t>(sample.rotation_dropped));
  windowed.Set("cumulative", HistogramToJson(sample.cumulative));
  JsonValue windows = JsonValue::Array();
  for (const auto& window : sample.windows) {
    JsonValue entry = JsonValue::Object();
    entry.Set("epochs", window.epochs);
    entry.Set("p50", SamplePercentile(window.merged, 50.0));
    entry.Set("p99", SamplePercentile(window.merged, 99.0));
    entry.Set("p999", SamplePercentile(window.merged, 99.9));
    entry.Set("histogram", HistogramToJson(window.merged));
    windows.Append(std::move(entry));
  }
  windowed.Set("windows", std::move(windows));
  return windowed;
}

double MillisFromNanos(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace

Status WriteTextFile(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open metrics output file: " + path);
  }
  size_t written = std::fwrite(body.data(), 1, body.size(), f);
  int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::IoError("short write to metrics output file: " + path);
  }
  return Status::OK();
}

std::string CsvEscape(std::string_view field) {
  if (field.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(field);
  }
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

JsonValue JsonExporter::BuildReport(const std::string& run_name,
                                    const MetricsSnapshot& metrics,
                                    const TraceSnapshot& trace) {
  JsonValue report = JsonValue::Object();
  report.Set("run", run_name);
  report.Set("schema_version", kSchemaVersion);
  report.Set("build", BuildInfo());

  JsonValue metadata = JsonValue::Object();
  for (const auto& [key, value] : metrics.metadata) {
    metadata.Set(key, value);
  }
  report.Set("metadata", std::move(metadata));

  JsonValue counters = JsonValue::Object();
  for (const auto& [name, value] : metrics.counters) {
    counters.Set(name, value);
  }
  report.Set("counters", std::move(counters));

  JsonValue gauges = JsonValue::Object();
  for (const auto& [name, value] : metrics.gauges) {
    gauges.Set(name, value);
  }
  report.Set("gauges", std::move(gauges));

  JsonValue histograms = JsonValue::Object();
  for (const HistogramSample& sample : metrics.histograms) {
    histograms.Set(sample.name, HistogramToJson(sample));
  }
  report.Set("histograms", std::move(histograms));

  JsonValue windowed = JsonValue::Object();
  for (const WindowedHistogramSample& sample : metrics.windowed) {
    windowed.Set(sample.name, WindowedToJson(sample));
  }
  report.Set("windowed", std::move(windowed));

  JsonValue span_stats = JsonValue::Object();
  for (const SpanStats& stats : trace.stats) {
    JsonValue entry = JsonValue::Object();
    entry.Set("count", static_cast<int64_t>(stats.count));
    entry.Set("total_ms", MillisFromNanos(stats.total_ns));
    entry.Set("min_ms", MillisFromNanos(stats.min_ns));
    entry.Set("max_ms", MillisFromNanos(stats.max_ns));
    span_stats.Set(stats.name, std::move(entry));
  }
  report.Set("span_stats", std::move(span_stats));

  JsonValue spans = JsonValue::Array();
  for (const SpanRecord& record : trace.spans) {
    JsonValue span = JsonValue::Object();
    span.Set("name", record.name);
    span.Set("start_ms", MillisFromNanos(record.start_ns));
    span.Set("dur_ms", MillisFromNanos(record.duration_ns));
    span.Set("depth", record.depth);
    span.Set("thread", record.thread_id);
    spans.Append(std::move(span));
  }
  report.Set("spans", std::move(spans));
  report.Set("spans_dropped", static_cast<int64_t>(trace.dropped));
  return report;
}

Status JsonExporter::WriteFile(const std::string& path,
                               const std::string& run_name) {
  JsonValue report =
      BuildReport(run_name, MetricsRegistry::Global().Snapshot(),
                  TraceBuffer::Global().Snapshot());
  return WriteTextFile(path, report.Serialize());
}

std::string CsvExporter::BuildCsv(const std::string& run_name,
                                  const MetricsSnapshot& metrics,
                                  const TraceSnapshot& trace) {
  std::string out = "run,kind,name,field,value\n";
  auto row = [&](const std::string& kind, const std::string& name,
                 const std::string& field, const std::string& value) {
    out += CsvEscape(run_name) + "," + CsvEscape(kind) + "," +
           CsvEscape(name) + "," + CsvEscape(field) + "," + CsvEscape(value) +
           "\n";
  };
  for (const auto& [key, value] : metrics.metadata) {
    row("metadata", key, "value", value);
  }
  for (const auto& [name, value] : metrics.counters) {
    row("counter", name, "value", std::to_string(value));
  }
  for (const auto& [name, value] : metrics.gauges) {
    row("gauge", name, "value", std::to_string(value));
  }
  for (const HistogramSample& sample : metrics.histograms) {
    row("histogram", sample.name, "count", std::to_string(sample.count));
    row("histogram", sample.name, "sum", std::to_string(sample.sum));
    row("histogram", sample.name, "min", std::to_string(sample.min));
    row("histogram", sample.name, "max", std::to_string(sample.max));
  }
  for (const SpanStats& stats : trace.stats) {
    row("span", stats.name, "count", std::to_string(stats.count));
    row("span", stats.name, "total_ms",
        std::to_string(MillisFromNanos(stats.total_ns)));
  }
  return out;
}

Status CsvExporter::WriteFile(const std::string& path,
                              const std::string& run_name) {
  std::string body =
      BuildCsv(run_name, MetricsRegistry::Global().Snapshot(),
               TraceBuffer::Global().Snapshot());
  return WriteTextFile(path, body);
}

Status ExportMetrics(const std::string& path, const std::string& run_name) {
  if (path.empty()) return Status::OK();
  if (path.ends_with(".csv")) {
    return CsvExporter::WriteFile(path, run_name);
  }
  return JsonExporter::WriteFile(path, run_name);
}

std::string MetricsOutPath(const std::string& default_path) {
  // Read once during process startup, before worker threads exist; nothing
  // in this codebase calls setenv/putenv.
  if (const char* env = std::getenv(kMetricsOutEnvVar)) {  // NOLINT(concurrency-mt-unsafe)
    return env;  // May be "", meaning export is disabled.
  }
  return default_path;
}

bool ExportMetricsFromEnv(const std::string& run_name) {
  std::string path = MetricsOutPath("");
  if (path.empty()) return false;
  return ExportMetrics(path, run_name).ok();
}

}  // namespace convpairs::obs
