// Metric instruments: Counter, Gauge, Histogram.
//
// The paper's argument is a cost/quality trade-off — SSSP computations spent
// vs. top-k pairs covered — so the repo needs machine-readable cost counters,
// not just wall-clock. These instruments are cheap enough to live on hot
// paths: every mutation is a relaxed atomic operation (lock-free on int64/
// double), safe under the util/parallel.h thread pools. Hot code caches a
// reference once (registry lookup is mutex-guarded) and then pays one or two
// atomic adds per *SSSP run*, never per edge.
//
// Convention follows Bergamini et al.'s top-k closeness evaluation: count
// visited nodes / relaxed edges per search, and let seconds be derived.

#ifndef CONVPAIRS_OBS_METRICS_H_
#define CONVPAIRS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace convpairs::obs {

/// Monotonically increasing event count (e.g. "sssp.bfs.runs").
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Zeroes the counter. The instrument stays registered, so references
  /// cached by hot paths remain valid.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-written point-in-time value (e.g. "sssp.budget.used").
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// One histogram's state at snapshot time.
struct HistogramSample {
  std::string name;
  /// Upper bucket bounds, ascending; an implicit +inf bucket follows.
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) counts; size() == bounds.size() + 1.
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // Meaningful only when count > 0.
  double max = 0.0;
};

/// Fixed-bucket histogram. Value v lands in the first bucket whose upper
/// bound satisfies v <= bound (values above the last bound go to the
/// overflow bucket). Observe() is a bucket binary search plus relaxed
/// atomic increments — no allocation, no locks.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket `i` (i == bounds().size() is the overflow bucket).
  uint64_t BucketCount(size_t i) const;

  /// Estimated value at percentile `p` in [0, 100], by linear interpolation
  /// inside the bucket holding the rank (the overflow bucket interpolates
  /// toward the observed max). Returns 0 when empty.
  double Percentile(double p) const;

  HistogramSample Sample(std::string name) const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// `count` bounds: start, start*factor, start*factor^2, ... (start > 0,
/// factor > 1). The default shape for per-search node/edge counts.
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// `count` bounds: start, start+width, start+2*width, ...
std::vector<double> LinearBuckets(double start, double width, int count);

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_METRICS_H_
