// Telemetry export: registry + trace snapshot -> JSON / CSV file.
//
// The JSON document is the repo's machine-readable benchmark record (the
// `BENCH_<name>.json` schema documented in README.md): run name, build and
// run metadata, every counter/gauge, histogram buckets with percentile
// summaries, per-phase span aggregates and the raw (bounded) span list.
// CSV export flattens the same snapshot into `kind,name,field,value` rows
// for quick joins against the paper tables.
//
// The output path is chosen by CONVPAIRS_METRICS_OUT; benches fall back to
// BENCH_<name>.json when it is unset, and an empty value disables export.

#ifndef CONVPAIRS_OBS_EXPORT_H_
#define CONVPAIRS_OBS_EXPORT_H_

#include <string>

#include "obs/json.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/status.h"

namespace convpairs::obs {

/// Environment variable naming the export destination.
inline constexpr const char* kMetricsOutEnvVar = "CONVPAIRS_METRICS_OUT";

class JsonExporter {
 public:
  /// Assembles the full telemetry document from explicit snapshots.
  static JsonValue BuildReport(const std::string& run_name,
                               const MetricsSnapshot& metrics,
                               const TraceSnapshot& trace);

  /// Snapshots the global registry/trace buffer and writes `path`.
  static Status WriteFile(const std::string& path,
                          const std::string& run_name);
};

class CsvExporter {
 public:
  static std::string BuildCsv(const std::string& run_name,
                              const MetricsSnapshot& metrics,
                              const TraceSnapshot& trace);

  static Status WriteFile(const std::string& path,
                          const std::string& run_name);
};

/// Writes the global telemetry to `path` (CSV when the path ends in ".csv",
/// JSON otherwise). An empty path is a silent no-op success.
Status ExportMetrics(const std::string& path, const std::string& run_name);

/// Resolves the export path: CONVPAIRS_METRICS_OUT when set (empty value
/// means "disabled" and yields ""), else `default_path`.
std::string MetricsOutPath(const std::string& default_path);

/// Exports to CONVPAIRS_METRICS_OUT if it is set and non-empty. Returns
/// true when a file was written.
bool ExportMetricsFromEnv(const std::string& run_name);

/// Writes `body` to `path`, replacing any existing file. Shared by the
/// telemetry and Chrome-trace exporters.
Status WriteTextFile(const std::string& path, const std::string& body);

/// RFC-4180 CSV field quoting: returns `field` unchanged unless it contains
/// a comma, quote, or newline, in which case it is wrapped in double quotes
/// with embedded quotes doubled.
std::string CsvEscape(std::string_view field);

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_EXPORT_H_
