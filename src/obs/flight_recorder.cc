#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/trace.h"

namespace convpairs::obs {
namespace {

// Lane index for the calling thread: assigned on first use, -1 once the
// recorder is out of lanes (events then count into overflow_dropped).
// -2 marks "not yet assigned".
thread_local int tls_lane = -2;

constexpr uint64_t kKindMask = 0xff;

uint64_t PackMeta(FlightEventKind kind, uint32_t arg0) {
  return (static_cast<uint64_t>(arg0) << 32) |
         static_cast<uint64_t>(kind);
}

}  // namespace

std::atomic<bool> FlightRecorder::enabled_{false};

std::string_view FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kPoolRegionBegin:
      return "pool.region_begin";
    case FlightEventKind::kPoolRegionEnd:
      return "pool.region_end";
    case FlightEventKind::kPoolRegionInline:
      return "pool.region_inline";
    case FlightEventKind::kPoolChunk:
      return "pool.chunk";
    case FlightEventKind::kPoolStealAttempt:
      return "pool.steal_attempt";
    case FlightEventKind::kPoolSteal:
      return "pool.steal";
    case FlightEventKind::kPoolIdle:
      return "pool.idle";
    case FlightEventKind::kBfsLevel:
      return "bfs.level";
    case FlightEventKind::kDirOptSwitch:
      return "bfs.diropt.switch";
    case FlightEventKind::kMsBfsLevel:
      return "bfs.msbfs.level";
    case FlightEventKind::kMsBfsBatch:
      return "bfs.msbfs.batch";
    case FlightEventKind::kServerRequest:
      return "server.request";
    case FlightEventKind::kServerBatch:
      return "server.batch";
    case FlightEventKind::kServerStage:
      return "server.stage";
    case FlightEventKind::kNumKinds:
      break;
  }
  return "invalid";
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // Never freed.
  return *recorder;
}

FlightRecorder::FlightRecorder() : lanes_(new Lane[kMaxLanes]) {}

int FlightRecorder::LaneForThisThread() {
  if (tls_lane != -2) return tls_lane;
  int lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
  if (lane >= kMaxLanes) {
    tls_lane = -1;
    return -1;
  }
  lanes_[lane].thread_id.store(TraceThreadId(), std::memory_order_relaxed);
  lanes_[lane].slots.store(new Slot[kLaneCapacity],  // Never freed.
                           std::memory_order_release);
  tls_lane = lane;
  return lane;
}

void FlightRecorder::RecordImpl(FlightEventKind kind, uint64_t ts_ns,
                                uint64_t dur_ns, uint32_t arg0,
                                uint64_t arg1) {
  int lane_index = LaneForThisThread();
  if (lane_index < 0) {
    overflow_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Lane& lane = lanes_[lane_index];
  Slot* slots = lane.slots.load(std::memory_order_relaxed);
  uint64_t count = lane.cursor.load(std::memory_order_relaxed);
  Slot& slot = slots[count % kLaneCapacity];
  slot.ts.store(ts_ns, std::memory_order_relaxed);
  slot.dur.store(dur_ns, std::memory_order_relaxed);
  slot.meta.store(PackMeta(kind, arg0), std::memory_order_relaxed);
  slot.arg1.store(arg1, std::memory_order_relaxed);
  // Release so a snapshot that observes the new cursor also observes the
  // slot words (for the non-wrapped prefix; wrapped slots may tear and are
  // filtered by the kind-range check on decode).
  lane.cursor.store(count + 1, std::memory_order_release);
}

FlightSnapshot FlightRecorder::Snapshot() const {
  FlightSnapshot snapshot;
  snapshot.enabled = enabled();
  snapshot.overflow_dropped =
      overflow_dropped_.load(std::memory_order_relaxed);
  snapshot.dropped_total = snapshot.overflow_dropped;

  const int lanes_used =
      std::min(next_lane_.load(std::memory_order_relaxed), kMaxLanes);
  for (int i = 0; i < lanes_used; ++i) {
    const Lane& lane = lanes_[i];
    const uint64_t count = lane.cursor.load(std::memory_order_acquire);
    const Slot* slots = lane.slots.load(std::memory_order_acquire);
    if (count == 0 || slots == nullptr) continue;

    FlightLaneSnapshot out;
    out.lane = i;
    out.thread_id = lane.thread_id.load(std::memory_order_relaxed);
    out.recorded = count;
    out.dropped = count > kLaneCapacity ? count - kLaneCapacity : 0;
    snapshot.dropped_total += out.dropped;

    const uint64_t kept = std::min<uint64_t>(count, kLaneCapacity);
    const uint64_t first = count - kept;  // Oldest surviving event index.
    out.events.reserve(kept);
    for (uint64_t e = first; e < count; ++e) {
      const Slot& slot = slots[e % kLaneCapacity];
      FlightEvent event;
      event.ts_ns = slot.ts.load(std::memory_order_relaxed);
      event.dur_ns = slot.dur.load(std::memory_order_relaxed);
      const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      const uint64_t kind_raw = meta & kKindMask;
      if (kind_raw >= static_cast<uint64_t>(FlightEventKind::kNumKinds)) {
        continue;  // Torn slot from a racing wrap; discard.
      }
      event.kind = static_cast<FlightEventKind>(kind_raw);
      event.arg0 = static_cast<uint32_t>(meta >> 32);
      event.arg1 = slot.arg1.load(std::memory_order_relaxed);
      out.events.push_back(event);
    }
    snapshot.lanes.push_back(std::move(out));
  }
  return snapshot;
}

void FlightRecorder::Reset() {
  overflow_dropped_.store(0, std::memory_order_relaxed);
  const int lanes_used =
      std::min(next_lane_.load(std::memory_order_relaxed), kMaxLanes);
  for (int i = 0; i < lanes_used; ++i) {
    lanes_[i].cursor.store(0, std::memory_order_relaxed);
  }
}

FlightScope::FlightScope(FlightEventKind kind, uint32_t arg0, uint64_t arg1)
    : kind_(kind),
      arg0_(arg0),
      arg1_(arg1),
      start_ns_(FlightRecorder::enabled() ? TraceNowNanos() : UINT64_MAX) {}

FlightScope::~FlightScope() {
  if (start_ns_ == UINT64_MAX) return;
  if (!FlightRecorder::enabled()) return;  // Disabled mid-scope: drop.
  FlightRecorder::Record(kind_, start_ns_, TraceNowNanos() - start_ns_,
                         arg0_, arg1_);
}

}  // namespace convpairs::obs
