#include "obs/registry.h"

namespace convpairs::obs {
namespace {

template <typename Map, typename Factory>
auto& FindOrCreate(Map& map, std::string_view name, Factory make) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(histograms_, name, [&] {
    return std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  });
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  static const std::vector<double> kDefaultBounds =
      ExponentialBuckets(1.0, 2.0, 24);
  return GetHistogram(name, kDefaultBounds);
}

void MetricsRegistry::SetMetadata(std::string_view key,
                                  std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  metadata_.insert_or_assign(std::string(key), std::string(value));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Sample(name));
  }
  snapshot.metadata.assign(metadata_.begin(), metadata_.end());
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  metadata_.clear();
}

}  // namespace convpairs::obs
