#include "obs/registry.h"

#include <algorithm>

namespace convpairs::obs {
namespace {

// Derived counter surfaced in every snapshot (see MetricsSnapshot docs).
constexpr std::string_view kOverflowCounterName = "obs.histogram.overflow";

template <typename Map, typename Factory>
auto& FindOrCreate(Map& map, std::string_view name, Factory make) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), make()).first;
  }
  return *it->second;
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Never freed.
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(counters_, name,
                      [] { return std::make_unique<Counter>(); });
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(gauges_, name, [] { return std::make_unique<Gauge>(); });
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(histograms_, name, [&] {
    return std::make_unique<Histogram>(
        std::vector<double>(bounds.begin(), bounds.end()));
  });
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  static const std::vector<double> kDefaultBounds =
      ExponentialBuckets(1.0, 2.0, 24);
  return GetHistogram(name, kDefaultBounds);
}

WindowedHistogram& MetricsRegistry::GetWindowedHistogram(
    std::string_view name, std::span<const double> bounds,
    WindowedHistogram::Options options) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(windowed_, name, [&] {
    return std::make_unique<WindowedHistogram>(
        std::vector<double>(bounds.begin(), bounds.end()),
        std::move(options));
  });
}

WindowedHistogram& MetricsRegistry::GetWindowedHistogram(
    std::string_view name, std::span<const double> bounds) {
  return GetWindowedHistogram(name, bounds, WindowedHistogram::Options{});
}

WindowedHistogram& MetricsRegistry::GetWindowedHistogram(
    std::string_view name) {
  static const std::vector<double> kDefaultBounds =
      ExponentialBuckets(10.0, 2.0, 22);
  return GetWindowedHistogram(name, kDefaultBounds);
}

void MetricsRegistry::SetMetadata(std::string_view key,
                                  std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  metadata_.insert_or_assign(std::string(key), std::string(value));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.push_back(histogram->Sample(name));
  }
  snapshot.windowed.reserve(windowed_.size());
  for (const auto& [name, windowed] : windowed_) {
    snapshot.windowed.push_back(windowed->Sample(name));
  }
  // obs.histogram.overflow is set-to-snapshot: the +inf mass across every
  // cumulative view, recomputed here (same pattern as the flight-recorder
  // counter sync) so Observe never pays a registry lookup for it.
  int64_t overflow = 0;
  for (const HistogramSample& sample : snapshot.histograms) {
    overflow += static_cast<int64_t>(sample.buckets.back());
  }
  for (const WindowedHistogramSample& sample : snapshot.windowed) {
    overflow += static_cast<int64_t>(sample.cumulative.buckets.back());
  }
  snapshot.counters.reserve(counters_.size() + 1);
  for (const auto& [name, counter] : counters_) {
    if (name == kOverflowCounterName) continue;  // Derived; never stale.
    snapshot.counters.emplace_back(name, counter->value());
  }
  auto pos = std::lower_bound(
      snapshot.counters.begin(), snapshot.counters.end(), kOverflowCounterName,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  snapshot.counters.emplace(pos, std::string(kOverflowCounterName), overflow);
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.metadata.assign(metadata_.begin(), metadata_.end());
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
  for (auto& [name, windowed] : windowed_) windowed->Reset();
  metadata_.clear();
}

}  // namespace convpairs::obs
