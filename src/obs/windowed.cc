#include "obs/windowed.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/trace.h"
#include "util/check.h"

namespace convpairs::obs {
namespace {

uint64_t SteadyClock() { return TraceNowNanos(); }

}  // namespace

WindowedHistogram::WindowedHistogram(std::vector<double> bounds,
                                     Options options)
    : bounds_(std::move(bounds)),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : &SteadyClock),
      cumulative_(bounds_) {
  CONVPAIRS_CHECK(!bounds_.empty());
  CONVPAIRS_CHECK_GT(options_.epoch_nanos, 0u);
  CONVPAIRS_CHECK(!options_.window_epochs.empty());
  int64_t max_window = 0;
  for (int64_t w : options_.window_epochs) {
    CONVPAIRS_CHECK_GT(w, 0);
    max_window = std::max(max_window, w);
  }
  // One slot per in-window epoch plus slack: the current partial epoch and
  // one slot being recycled never evict a shard the longest window still
  // needs.
  size_t num_shards = static_cast<size_t>(max_window) + 2;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) shard->buckets[b].store(0);
    // Seed with an epoch no live clock can produce again, so the first
    // Observe on every slot rotates it instead of merging into epoch 0.
    shard->epoch.store(kRotating - 1 - i, std::memory_order_relaxed);
    shards_.push_back(std::move(shard));
  }
}

WindowedHistogram::WindowedHistogram(std::vector<double> bounds)
    : WindowedHistogram(std::move(bounds), Options{}) {}

uint64_t WindowedHistogram::NowEpoch() const {
  return clock_() / options_.epoch_nanos;
}

WindowedHistogram::Shard* WindowedHistogram::ClaimShard(uint64_t epoch) {
  Shard& shard = *shards_[epoch % shards_.size()];
  // Two retries cover the common race (another observer finished rotating
  // between our load and CAS); a rotator preempted mid-zero is rare enough
  // to drop the windowed increment rather than spin on the hot path.
  for (int attempt = 0; attempt < 3; ++attempt) {
    uint64_t seen = shard.epoch.load(std::memory_order_acquire);
    if (seen == epoch) return &shard;
    if (seen == kRotating) continue;  // Another thread is zeroing this slot.
    if (shard.epoch.compare_exchange_strong(seen, kRotating,
                                            std::memory_order_acq_rel)) {
      for (size_t b = 0; b <= bounds_.size(); ++b) {
        shard.buckets[b].store(0, std::memory_order_relaxed);
      }
      shard.count.store(0, std::memory_order_relaxed);
      shard.sum.store(0.0, std::memory_order_relaxed);
      shard.epoch.store(epoch, std::memory_order_release);
      return &shard;
    }
  }
  rotation_dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void WindowedHistogram::Observe(double value) {
  cumulative_.Observe(value);
  Shard* shard = ClaimShard(NowEpoch());
  if (shard == nullptr) return;
  size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard->buckets[idx].fetch_add(1, std::memory_order_relaxed);
  shard->count.fetch_add(1, std::memory_order_relaxed);
  shard->sum.fetch_add(value, std::memory_order_relaxed);
}

HistogramSample WindowedHistogram::Window(int64_t window_epochs,
                                          std::string name) const {
  CONVPAIRS_CHECK_GT(window_epochs, 0);
  HistogramSample sample;
  sample.name = std::move(name);
  sample.bounds = bounds_;
  sample.buckets.assign(bounds_.size() + 1, 0);
  const uint64_t now_epoch = NowEpoch();
  const uint64_t oldest =
      now_epoch >= static_cast<uint64_t>(window_epochs) - 1
          ? now_epoch - static_cast<uint64_t>(window_epochs) + 1
          : 0;
  for (const auto& shard : shards_) {
    uint64_t epoch = shard->epoch.load(std::memory_order_acquire);
    if (epoch == kRotating || epoch < oldest || epoch > now_epoch) continue;
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      sample.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
    sample.count += shard->count.load(std::memory_order_relaxed);
    sample.sum += shard->sum.load(std::memory_order_relaxed);
  }
  if (sample.count > 0) {
    // min/max aren't tracked per shard; report bucket-derived bounds so
    // downstream interpolation stays sane.
    size_t lo = 0;
    while (lo < bounds_.size() && sample.buckets[lo] == 0) ++lo;
    size_t hi = bounds_.size();
    while (hi > 0 && sample.buckets[hi] == 0) --hi;
    sample.min = lo == 0 ? 0.0 : bounds_[lo - 1];
    sample.max = hi < bounds_.size() ? bounds_[hi] : bounds_.back();
  }
  return sample;
}

double WindowedHistogram::WindowPercentile(double p,
                                           int64_t window_epochs) const {
  return SamplePercentile(Window(window_epochs, ""), p);
}

WindowedHistogramSample WindowedHistogram::Sample(std::string name) const {
  WindowedHistogramSample sample;
  sample.epoch_nanos = options_.epoch_nanos;
  sample.rotation_dropped = rotation_dropped();
  sample.cumulative = cumulative_.Sample(name);
  for (int64_t w : options_.window_epochs) {
    sample.windows.push_back({w, Window(w, name)});
  }
  sample.name = std::move(name);
  return sample;
}

void WindowedHistogram::Reset() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = *shards_[i];
    shard.epoch.store(kRotating - 1 - i, std::memory_order_relaxed);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  cumulative_.Reset();
  rotation_dropped_.store(0, std::memory_order_relaxed);
}

double SamplePercentile(const HistogramSample& sample, double p) {
  CONVPAIRS_CHECK_GE(p, 0.0);
  CONVPAIRS_CHECK_LE(p, 100.0);
  if (sample.count == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(sample.count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < sample.buckets.size(); ++i) {
    uint64_t in_bucket = sample.buckets[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket >= rank) {
      double lo = i == 0 ? std::min(sample.min, sample.bounds.front())
                         : sample.bounds[i - 1];
      double hi = i == sample.bounds.size()
                      ? std::max(sample.max, sample.bounds.back())
                      : sample.bounds[i];
      double fraction = static_cast<double>(rank - cumulative) /
                        static_cast<double>(in_bucket);
      return lo + (hi - lo) * fraction;
    }
    cumulative += in_bucket;
  }
  return sample.max;
}

}  // namespace convpairs::obs
