// Process-wide metrics registry.
//
// Instruments are created on first lookup and never deallocated, so hot
// paths may cache the returned reference in a function-local static and
// mutate it lock-free forever after — Reset() zeroes values but keeps every
// instrument alive precisely so those cached references stay valid (tests
// rely on this). Lookup itself takes a mutex; do it once, not per event.

#ifndef CONVPAIRS_OBS_REGISTRY_H_
#define CONVPAIRS_OBS_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace convpairs::obs {

/// Point-in-time copy of every registered instrument plus run metadata.
///
/// `counters` always includes the derived `obs.histogram.overflow` entry:
/// the total count sitting in +inf buckets across every histogram
/// (cumulative and windowed-cumulative), recomputed at snapshot time so
/// +inf saturation — percentiles silently clamped to the last finite
/// bound — is visible to scrapers without any hot-path bookkeeping.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<WindowedHistogramSample> windowed;
  std::vector<std::pair<std::string, std::string>> metadata;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumented module reports into.
  static MetricsRegistry& Global();

  /// Returns the named instrument, creating it on first use. A histogram's
  /// bounds are fixed by the first caller; later callers get the existing
  /// instrument regardless of the bounds they pass.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds);
  /// Default bounds: exponential 1, 2, 4, ..., 2^23 — sized for per-search
  /// node/edge counts on multi-million-edge graphs.
  Histogram& GetHistogram(std::string_view name);

  /// Windowed (SLO) histogram; bounds and options fixed by the first
  /// caller, like GetHistogram. The two-argument overload uses default
  /// options (1s epochs, 10s/60s windows, steady clock).
  WindowedHistogram& GetWindowedHistogram(std::string_view name,
                                          std::span<const double> bounds,
                                          WindowedHistogram::Options options);
  WindowedHistogram& GetWindowedHistogram(std::string_view name,
                                          std::span<const double> bounds);
  /// Default bounds: exponential 10us, 20us, ..., ~2^21*10us (~21s) —
  /// sized for request-latency microsecond observations.
  WindowedHistogram& GetWindowedHistogram(std::string_view name);

  /// Free-form run metadata (dataset, scale, seed, ...) carried into every
  /// export. Last write per key wins.
  void SetMetadata(std::string_view key, std::string_view value);

  MetricsSnapshot Snapshot() const;

  /// Zeroes all instruments and clears metadata. Instruments themselves
  /// survive, keeping cached references valid.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<WindowedHistogram>, std::less<>>
      windowed_;
  std::map<std::string, std::string, std::less<>> metadata_;
};

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_REGISTRY_H_
