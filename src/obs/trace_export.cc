#include "obs/trace_export.h"

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"

namespace convpairs::obs {
namespace {

// All tracks share one process group; phase tracks sit on high tids so the
// seat tracks keep small, human-readable ids.
constexpr int kPid = 1;
constexpr int kPhaseTidBase = 1000;

double MicrosFromNanos(uint64_t ns) { return static_cast<double>(ns) / 1e3; }

JsonValue MetadataEvent(const char* name, int tid, JsonValue args) {
  JsonValue event = JsonValue::Object();
  event.Set("ph", "M");
  event.Set("pid", kPid);
  event.Set("tid", tid);
  event.Set("name", name);
  event.Set("args", std::move(args));
  return event;
}

JsonValue ThreadName(int tid, const std::string& name) {
  JsonValue args = JsonValue::Object();
  args.Set("name", name);
  return MetadataEvent("thread_name", tid, std::move(args));
}

JsonValue ThreadSortIndex(int tid, int sort_index) {
  JsonValue args = JsonValue::Object();
  args.Set("sort_index", static_cast<int64_t>(sort_index));
  return MetadataEvent("thread_sort_index", tid, std::move(args));
}

JsonValue BaseEvent(std::string_view name, const char* category,
                    const char* phase, int tid, double ts_us) {
  JsonValue event = JsonValue::Object();
  event.Set("name", std::string(name));
  event.Set("cat", category);
  event.Set("ph", phase);
  event.Set("pid", kPid);
  event.Set("tid", tid);
  event.Set("ts", ts_us);
  return event;
}

JsonValue DurationEvent(std::string_view name, const char* category, int tid,
                        uint64_t start_ns, uint64_t dur_ns, JsonValue args) {
  JsonValue event =
      BaseEvent(name, category, "X", tid, MicrosFromNanos(start_ns));
  event.Set("dur", MicrosFromNanos(dur_ns));
  event.Set("args", std::move(args));
  return event;
}

JsonValue InstantEvent(std::string_view name, const char* category, int tid,
                       uint64_t ts_ns, JsonValue args) {
  JsonValue event =
      BaseEvent(name, category, "i", tid, MicrosFromNanos(ts_ns));
  event.Set("s", "t");  // Thread-scoped instant.
  event.Set("args", std::move(args));
  return event;
}

JsonValue FlightArgs(const FlightEvent& event) {
  JsonValue args = JsonValue::Object();
  switch (event.kind) {
    case FlightEventKind::kPoolRegionBegin:
    case FlightEventKind::kPoolRegionEnd:
      args.Set("chunks", static_cast<int64_t>(event.arg0));
      args.Set("items", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kPoolRegionInline:
      args.Set("items", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kPoolChunk:
      args.Set("chunk", static_cast<int64_t>(event.arg0));
      args.Set("items", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kPoolStealAttempt:
      args.Set("victim", static_cast<int64_t>(event.arg0));
      break;
    case FlightEventKind::kPoolSteal:
      args.Set("victim", static_cast<int64_t>(event.arg0));
      args.Set("chunks", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kPoolIdle:
      break;
    case FlightEventKind::kBfsLevel:
    case FlightEventKind::kMsBfsLevel:
      args.Set("level", static_cast<int64_t>(event.arg0));
      args.Set("frontier", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kDirOptSwitch:
      args.Set("to", event.arg0 == 1 ? "bottom_up" : "top_down");
      args.Set("frontier_edges", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kMsBfsBatch:
      args.Set("lanes", static_cast<int64_t>(event.arg0));
      args.Set("levels", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kServerRequest:
      args.Set("verb", static_cast<int64_t>(event.arg0));
      args.Set("error", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kServerBatch:
      args.Set("lanes", static_cast<int64_t>(event.arg0));
      args.Set("queries", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kServerStage:
      // Stage ids are request_context.h's RequestStage; obs sits below the
      // server layer, so the exporter carries the raw id and
      // scripts/trace_summary.py owns the name mapping.
      args.Set("stage", static_cast<int64_t>(event.arg0));
      args.Set("verb", static_cast<int64_t>(event.arg1));
      break;
    case FlightEventKind::kNumKinds:
      break;
  }
  return args;
}

// Appends one lane's events: region begin/end instants are paired into
// "pool.region" duration blocks (a stack, since inline regions may nest
// inside a pooled one on the caller lane); everything else maps directly.
void AppendLaneEvents(const FlightLaneSnapshot& lane, int tid,
                      JsonValue* events) {
  std::vector<FlightEvent> open_regions;
  for (const FlightEvent& event : lane.events) {
    const std::string_view name = FlightEventKindName(event.kind);
    switch (event.kind) {
      case FlightEventKind::kPoolRegionBegin:
        open_regions.push_back(event);
        break;
      case FlightEventKind::kPoolRegionEnd:
        if (!open_regions.empty()) {
          const FlightEvent begin = open_regions.back();
          open_regions.pop_back();
          events->Append(DurationEvent("pool.region", "pool", tid,
                                       begin.ts_ns,
                                       event.ts_ns - begin.ts_ns,
                                       FlightArgs(event)));
        } else {
          // The matching begin was overwritten by a ring wrap.
          events->Append(
              InstantEvent(name, "pool", tid, event.ts_ns, FlightArgs(event)));
        }
        break;
      case FlightEventKind::kPoolRegionInline:
      case FlightEventKind::kPoolChunk:
      case FlightEventKind::kPoolIdle:
        events->Append(DurationEvent(name, "pool", tid, event.ts_ns,
                                     event.dur_ns, FlightArgs(event)));
        break;
      case FlightEventKind::kPoolStealAttempt:
      case FlightEventKind::kPoolSteal:
        events->Append(
            InstantEvent(name, "pool", tid, event.ts_ns, FlightArgs(event)));
        break;
      case FlightEventKind::kBfsLevel:
      case FlightEventKind::kMsBfsLevel:
      case FlightEventKind::kMsBfsBatch:
        events->Append(DurationEvent(name, "bfs", tid, event.ts_ns,
                                     event.dur_ns, FlightArgs(event)));
        break;
      case FlightEventKind::kDirOptSwitch:
        events->Append(
            InstantEvent(name, "bfs", tid, event.ts_ns, FlightArgs(event)));
        break;
      case FlightEventKind::kServerRequest:
      case FlightEventKind::kServerBatch:
      case FlightEventKind::kServerStage:
        events->Append(DurationEvent(name, "server", tid, event.ts_ns,
                                     event.dur_ns, FlightArgs(event)));
        break;
      case FlightEventKind::kNumKinds:
        break;
    }
  }
  // Regions whose end fell past the snapshot (or was dropped) degrade to
  // begin instants so the evidence is not silently discarded.
  for (const FlightEvent& begin : open_regions) {
    events->Append(InstantEvent(FlightEventKindName(begin.kind), "pool", tid,
                                begin.ts_ns, FlightArgs(begin)));
  }
}

}  // namespace

JsonValue BuildChromeTrace(const std::string& run_name,
                           const TraceSnapshot& trace,
                           const FlightSnapshot& flight) {
  JsonValue events = JsonValue::Array();

  JsonValue process_args = JsonValue::Object();
  process_args.Set("name", "convpairs: " + run_name);
  events.Append(MetadataEvent("process_name", 0, std::move(process_args)));

  // Phase tracks: one per thread that recorded a ScopedSpan, pinned above
  // the seat tracks via sort_index.
  std::vector<int> phase_threads;
  for (const SpanRecord& span : trace.spans) {
    bool seen = false;
    for (int id : phase_threads) seen = seen || id == span.thread_id;
    if (!seen) phase_threads.push_back(span.thread_id);
  }
  for (int thread_id : phase_threads) {
    const int tid = kPhaseTidBase + thread_id;
    events.Append(ThreadName(
        tid, "phases (thread " + std::to_string(thread_id) + ")"));
    events.Append(ThreadSortIndex(tid, -100 + thread_id));
  }
  for (const SpanRecord& span : trace.spans) {
    JsonValue args = JsonValue::Object();
    args.Set("depth", static_cast<int64_t>(span.depth));
    events.Append(DurationEvent(span.name, "phase",
                                kPhaseTidBase + span.thread_id, span.start_ns,
                                span.duration_ns, std::move(args)));
  }

  // One seat track per flight-recorder lane.
  for (const FlightLaneSnapshot& lane : flight.lanes) {
    const int tid = lane.lane;
    events.Append(ThreadName(tid, "seat " + std::to_string(lane.lane) +
                                      " (thread " +
                                      std::to_string(lane.thread_id) + ")"));
    events.Append(ThreadSortIndex(tid, lane.lane));
    AppendLaneEvents(lane, tid, &events);
  }

  JsonValue other = JsonValue::Object();
  other.Set("run", run_name);
  other.Set("spans_dropped", static_cast<int64_t>(trace.dropped));
  other.Set("flight_dropped", static_cast<int64_t>(flight.dropped_total));
  other.Set("flight_overflow_dropped",
            static_cast<int64_t>(flight.overflow_dropped));
  JsonValue lanes_dropped = JsonValue::Object();
  for (const FlightLaneSnapshot& lane : flight.lanes) {
    if (lane.dropped > 0) {
      lanes_dropped.Set("seat" + std::to_string(lane.lane),
                        static_cast<int64_t>(lane.dropped));
    }
  }
  other.Set("flight_dropped_per_seat", std::move(lanes_dropped));

  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  doc.Set("displayTimeUnit", "ms");
  doc.Set("otherData", std::move(other));
  return doc;
}

void SyncFlightCountersToRegistry(const FlightSnapshot& flight) {
  auto& registry = MetricsRegistry::Global();
  uint64_t recorded_total = 0;
  for (const FlightLaneSnapshot& lane : flight.lanes) {
    recorded_total += lane.recorded;
    if (lane.dropped > 0) {
      Counter& per_seat = registry.GetCounter(
          "obs.flight.dropped.seat" + std::to_string(lane.lane));
      per_seat.Reset();
      per_seat.Add(static_cast<int64_t>(lane.dropped));
    }
  }
  // Set-to-snapshot semantics: the counters mirror the recorder's lifetime
  // totals, so re-exporting never double-counts.
  Counter& events = registry.GetCounter("obs.flight.events");
  events.Reset();
  events.Add(static_cast<int64_t>(recorded_total));
  Counter& dropped = registry.GetCounter("obs.flight.dropped");
  dropped.Reset();
  dropped.Add(static_cast<int64_t>(flight.dropped_total));
  // Touch the span-drop counter (incremented live by TraceBuffer) so every
  // traced run's telemetry reports it, 0 included.
  registry.GetCounter("obs.trace.dropped");
}

Status WriteChromeTrace(const std::string& path,
                        const std::string& run_name) {
  FlightSnapshot flight = FlightRecorder::Global().Snapshot();
  SyncFlightCountersToRegistry(flight);
  JsonValue doc = BuildChromeTrace(run_name, TraceBuffer::Global().Snapshot(),
                                   flight);
  return WriteTextFile(path, doc.Serialize());
}

std::string TraceOutPath(const std::string& default_path) {
  // Read once during process startup, before worker threads exist; nothing
  // in this codebase calls setenv/putenv.
  const char* env = std::getenv(kTraceOutEnvVar);  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr) return default_path;
  const std::string value = env;
  if (value.empty()) return "";  // Explicitly disabled.
  if (value == "1" || value == "auto") return default_path;
  return value;
}

bool InitFlightRecorderFromEnv() {
  // Startup-time read; see TraceOutPath above.
  const char* env = std::getenv(kTraceOutEnvVar);  // NOLINT(concurrency-mt-unsafe)
  if (env != nullptr && env[0] != '\0') {
    FlightRecorder::Global().SetEnabled(true);
  }
  return FlightRecorder::enabled();
}

}  // namespace convpairs::obs
