// Minimal JSON document model: build, serialize, parse.
//
// The telemetry exporter needs dependency-free JSON output, and its tests
// need to parse that output back (round-trip check), so this module carries
// both directions. It covers the JSON subset the exporter emits — objects,
// arrays, strings, finite numbers, booleans, null — and is NOT a
// general-purpose parser: numbers parse via strtod, \uXXXX escapes decode
// basic-plane code points only, and input depth is bounded to keep the
// recursive parser safe on hostile input.

#ifndef CONVPAIRS_OBS_JSON_H_
#define CONVPAIRS_OBS_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace convpairs::obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  JsonValue(double n) : type_(Type::kNumber), number_(n) {}      // NOLINT
  JsonValue(int64_t n)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(int n) : JsonValue(static_cast<int64_t>(n)) {}       // NOLINT
  JsonValue(uint64_t n)                                          // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::string s)                                       // NOLINT
      : type_(Type::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s)                                  // NOLINT
      : type_(Type::kString), string_(s) {}
  JsonValue(const char* s) : JsonValue(std::string_view(s)) {}   // NOLINT

  static JsonValue Object() { return JsonValue(Type::kObject); }
  static JsonValue Array() { return JsonValue(Type::kArray); }

  Type type() const { return type_; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }

  bool GetBool() const;
  double GetNumber() const;
  const std::string& GetString() const;

  /// Object member insertion (keeps insertion order); returns *this so
  /// report-building code can chain.
  JsonValue& Set(std::string key, JsonValue value);

  /// Array element insertion.
  JsonValue& Append(JsonValue value);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Array element access (checked).
  const JsonValue& At(size_t index) const;

  /// Array length / object member count.
  size_t size() const;

  /// Serializes with two-space indentation.
  std::string Serialize() const;

  static StatusOr<JsonValue> Parse(std::string_view text);

 private:
  explicit JsonValue(Type type) : type_(type) {}
  void SerializeTo(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Escapes `s` as a JSON string literal including the surrounding quotes.
std::string JsonEscape(std::string_view s);

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_JSON_H_
