// Chrome trace-event export: span tracer + flight recorder -> one timeline.
//
// Emits the JSON object form of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// which loads directly in Perfetto (ui.perfetto.dev) and chrome://tracing.
// Track layout inside one process group:
//   - ScopedSpan phases land on high tids (one per span-recording thread,
//     pinned above the seat tracks) so the coarse phase timeline frames the
//     fine-grained events below it.
//   - Each flight-recorder lane (thread-pool seat / caller thread) gets its
//     own tid: pool chunks, steals, idle waits, BFS levels, direction
//     switches and MS-BFS batches render per seat.
// Duration events use ph "X"; point events use ph "i"; track naming and
// ordering use "M" metadata records. Timestamps are microseconds from the
// process trace epoch.
//
// Recording is enabled by the CONVPAIRS_TRACE_OUT environment variable (its
// value is the output path) or programmatically via
// FlightRecorder::SetEnabled(); benches and the CLI write the trace next to
// their telemetry JSON (<name>.trace.json — see bench/common/bench_env.cc
// and tools/convpairs_cli.cc). Writing a trace also syncs the truncation
// counters (obs.flight.dropped[.seat<i>], obs.flight.events) into the
// metrics registry so BENCH_*.json records whether any ring wrapped.

#ifndef CONVPAIRS_OBS_TRACE_EXPORT_H_
#define CONVPAIRS_OBS_TRACE_EXPORT_H_

#include <string>

#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/trace.h"
#include "util/status.h"

namespace convpairs::obs {

/// Environment variable holding the Chrome-trace output path. Setting it
/// (non-empty) also switches the flight recorder on at startup — see
/// InitFlightRecorderFromEnv(). The special values "1" and "auto" mean
/// "derive <run>.trace.json from the run name at export time".
inline constexpr const char* kTraceOutEnvVar = "CONVPAIRS_TRACE_OUT";

/// Assembles the Chrome trace-event document from explicit snapshots.
JsonValue BuildChromeTrace(const std::string& run_name,
                           const TraceSnapshot& trace,
                           const FlightSnapshot& flight);

/// Snapshots the global trace buffer + flight recorder, writes the Chrome
/// trace JSON to `path`, and syncs the obs.flight.* truncation counters
/// into the global metrics registry.
Status WriteChromeTrace(const std::string& path, const std::string& run_name);

/// Resolves the trace output path: CONVPAIRS_TRACE_OUT when set (empty
/// disables and yields ""; "1"/"auto" yield `default_path`), else
/// `default_path`.
std::string TraceOutPath(const std::string& default_path);

/// Enables flight recording when CONVPAIRS_TRACE_OUT is set non-empty.
/// Returns true when recording is on afterwards. Drivers call this before
/// the instrumented work starts (PrintHeader / CLI flag parsing).
bool InitFlightRecorderFromEnv();

/// Publishes the flight snapshot's truncation counts as registry counters:
/// obs.flight.events, obs.flight.dropped, and obs.flight.dropped.seat<i>
/// for every lane that wrapped. Idempotent per export (counters are set to
/// the snapshot's totals, not accumulated).
void SyncFlightCountersToRegistry(const FlightSnapshot& flight);

}  // namespace convpairs::obs

#endif  // CONVPAIRS_OBS_TRACE_EXPORT_H_
