// Snapshot-level statistics: Table 2 of the paper plus the graph-level
// features consumed by the global classifier (density, max degree).

#ifndef CONVPAIRS_GRAPH_GRAPH_STATS_H_
#define CONVPAIRS_GRAPH_GRAPH_STATS_H_

#include <cstdint>

#include "graph/graph.h"

namespace convpairs {

/// Aggregate structural statistics of one snapshot.
struct GraphStats {
  NodeId num_nodes = 0;          // active (degree >= 1) nodes
  uint64_t num_edges = 0;
  uint32_t max_degree = 0;
  double avg_degree = 0.0;
  double density = 0.0;          // 2m / (n(n-1)) over active nodes
  uint32_t num_components = 0;
  uint32_t giant_component_size = 0;
  Dist diameter = 0;             // exact, within the giant component
};

/// Computes all statistics. `exact_diameter` runs one BFS per giant-component
/// node (O(n m)); disable for quick summaries, which reports diameter 0.
GraphStats ComputeGraphStats(const Graph& g, bool exact_diameter = true);

/// Density over active nodes only: 2m / (n_active (n_active - 1)).
double GraphDensity(const Graph& g);

/// Maximum degree.
uint32_t MaxDegree(const Graph& g);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_GRAPH_STATS_H_
