// Fundamental graph value types shared across the library.

#ifndef CONVPAIRS_GRAPH_TYPES_H_
#define CONVPAIRS_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace convpairs {

/// Dense node identifier in [0, num_nodes).
using NodeId = uint32_t;

/// Shortest-path distance. Unweighted distances are hop counts; weighted
/// pipelines quantize weights to integers (see sssp/dijkstra.h).
using Dist = int32_t;

/// Sentinel for "unreachable". Chosen so that kInfDist - kInfDist and
/// kInfDist + small deltas never overflow int32.
inline constexpr Dist kInfDist = std::numeric_limits<Dist>::max() / 4;

/// Returns true if `d` denotes a reachable (finite) distance.
inline constexpr bool IsReachable(Dist d) { return d < kInfDist; }

/// An undirected edge with an optional weight (1.0 for unweighted graphs).
struct Edge {
  NodeId u = 0;
  NodeId v = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// An edge stamped with its insertion time. Time units are arbitrary but
/// totally ordered; generators use the insertion index.
struct TimedEdge {
  NodeId u = 0;
  NodeId v = 0;
  uint32_t time = 0;
  float weight = 1.0f;

  friend bool operator==(const TimedEdge&, const TimedEdge&) = default;
};

/// A node pair (always stored with u < v) plus its distance decrease
/// Delta(u,v) = d_t1(u,v) - d_t2(u,v).
struct ConvergingPair {
  NodeId u = 0;
  NodeId v = 0;
  Dist delta = 0;

  friend bool operator==(const ConvergingPair&, const ConvergingPair&) =
      default;
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_TYPES_H_
