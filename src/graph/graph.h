// Immutable undirected graph snapshot in CSR (compressed sparse row) form.
//
// Snapshots are built once from an edge list and then only read; CSR gives
// cache-friendly sequential neighbor scans for the BFS-heavy workloads in
// this library. Node ids are dense in [0, num_nodes); a snapshot of an
// evolving graph keeps the full id space so distance arrays are comparable
// across snapshots (nodes not yet present are simply isolated).

#ifndef CONVPAIRS_GRAPH_GRAPH_H_
#define CONVPAIRS_GRAPH_GRAPH_H_

#include <span>
#include <vector>

#include "graph/types.h"

namespace convpairs {

/// Immutable undirected (optionally weighted) graph.
class Graph {
 public:
  /// Empty graph with `num_nodes` isolated nodes.
  explicit Graph(NodeId num_nodes = 0);

  /// Builds a graph over ids [0, num_nodes) from an undirected edge list.
  /// Self-loops are dropped; parallel edges are deduplicated (keeping the
  /// smallest weight). Endpoints must be < num_nodes.
  static Graph FromEdges(NodeId num_nodes, std::span<const Edge> edges);

  /// Adopts an already-built unweighted CSR: `offsets` has num_nodes + 1
  /// nondecreasing entries, each row of `adjacency` is sorted and strictly
  /// increasing with no self-loops, and every half-edge appears in both
  /// directions. The caller (the .cps snapshot loader, which validates all
  /// of this structurally) vouches for the invariants; they are CHECKed
  /// only cheaply here.
  static Graph FromCsr(NodeId num_nodes, std::vector<size_t> offsets,
                       std::vector<NodeId> adjacency);

  /// Number of node ids (including isolated ones).
  NodeId num_nodes() const { return num_nodes_; }

  /// Number of undirected edges after dedup.
  size_t num_edges() const { return adjacency_.size() / 2; }

  /// Neighbors of `u`, sorted ascending.
  std::span<const NodeId> neighbors(NodeId u) const {
    return {adjacency_.data() + offsets_[u],
            adjacency_.data() + offsets_[u + 1]};
  }

  /// Weights parallel to neighbors(u). Only meaningful when is_weighted().
  std::span<const float> weights(NodeId u) const {
    return {weights_.data() + offsets_[u], weights_.data() + offsets_[u + 1]};
  }

  /// Degree of `u`.
  uint32_t degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// True if `u` and `v` are adjacent (binary search; O(log degree)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// True if any edge carries a weight different from 1.0.
  bool is_weighted() const { return is_weighted_; }

  /// Number of nodes with degree >= 1 (the "present" nodes of a snapshot).
  NodeId num_active_nodes() const { return num_active_nodes_; }

  /// Materializes the undirected edge list (u < v), sorted lexicographically.
  std::vector<Edge> ToEdgeList() const;

  /// Raw CSR row offsets (num_nodes + 1 entries). With adjacency(), the
  /// zero-copy backing for CsrAdjacency views and the .cps writer.
  std::span<const size_t> offsets() const { return offsets_; }

  /// Raw concatenated neighbor array (2 * num_edges entries).
  std::span<const NodeId> adjacency() const { return adjacency_; }

 private:
  NodeId num_nodes_ = 0;
  NodeId num_active_nodes_ = 0;
  bool is_weighted_ = false;
  std::vector<size_t> offsets_;     // num_nodes_ + 1 entries.
  std::vector<NodeId> adjacency_;   // 2 * num_edges entries.
  std::vector<float> weights_;      // parallel to adjacency_.
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_GRAPH_H_
