// Compact binary serialization for snapshots and temporal streams.
//
// Text edge lists (graph/graph_io.h) are interchange-friendly but slow and
// large for repeated experiment runs; this format is the cache the bench
// harness and CLI can round-trip datasets through. Layout (little-endian):
//
//   snapshot:  "CPGB" u32 version | u32 num_nodes | u64 num_edges |
//              u8 weighted | edges (u32 u, u32 v [, f32 w])*
//   temporal:  "CPGT" u32 version | u32 num_nodes | u64 num_events |
//              u8 weighted | events (u32 u, u32 v, u32 t [, f32 w])*
//
// Readers validate magic/version/bounds and fail with Status, never abort:
// files are external input.

#ifndef CONVPAIRS_GRAPH_BINARY_IO_H_
#define CONVPAIRS_GRAPH_BINARY_IO_H_

#include <string>

#include "graph/graph.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace convpairs {

/// Serializes a snapshot to the binary format.
std::string SerializeGraph(const Graph& g);

/// Parses a binary snapshot; InvalidArgument on malformed input. The node
/// count is capped (`max_nodes`, default 2^24) so a corrupted header cannot
/// drive a multi-gigabyte CSR allocation — raise the cap explicitly for
/// genuinely larger graphs.
StatusOr<Graph> DeserializeGraph(const std::string& bytes,
                                 uint32_t max_nodes = 1u << 24);

/// Serializes a temporal stream.
std::string SerializeTemporalGraph(const TemporalGraph& g);

/// Parses a binary temporal stream.
StatusOr<TemporalGraph> DeserializeTemporalGraph(const std::string& bytes);

/// File wrappers.
Status WriteGraphBinary(const Graph& g, const std::string& path);
StatusOr<Graph> ReadGraphBinary(const std::string& path);
Status WriteTemporalGraphBinary(const TemporalGraph& g,
                                const std::string& path);
StatusOr<TemporalGraph> ReadTemporalGraphBinary(const std::string& path);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_BINARY_IO_H_
