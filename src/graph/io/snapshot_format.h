// .cps binary snapshot container format (DESIGN.md §15).
//
// Layout (all integers little-endian; the endian marker rejects foreign
// byte orders at parse time):
//
//   [0, 96)                      header (fixed size, CRC-protected)
//   [96, 96 + 4*(n+1))           offsets section: u32 byte offsets into the
//                                payload, one per vertex plus end sentinel
//   [payload_off, +payload_len)  payload section: per-vertex neighbor
//                                records encoded by the codec named in the
//                                header (graph/codec/decompressor.h)
//
// Offsets are u32 — half the index footprint of u64, which matters because
// on low-degree graphs the per-vertex index rivals the compressed payload.
// The trade is a 4 GiB payload ceiling per snapshot; version 1 writers
// reject larger graphs, and lifting the ceiling is a version bump.
//
// Header fields (offset, type, meaning):
//    0  u8[4]  magic "CPS1"
//    4  u32    version          (kCpsVersion; readers reject mismatches)
//    8  u32    flags            (bit0 = weighted; must be 0 in version 1)
//   12  u32    codec_id         (0 = nop, 1 = varint)
//   16  u32    endian_check     (kCpsEndianCheck as written)
//   20  u32    num_nodes
//   24  u64    num_directed_edges
//   32  u64    offsets_off      (always 96 in version 1)
//   40  u64    offsets_bytes    (must equal 4 * (num_nodes + 1))
//   48  u64    payload_off      (4-aligned, so NopDecompressor views can
//                                reinterpret payload bytes as u32 ids)
//   56  u64    payload_bytes
//   64  u32    offsets_crc      (CRC-32 of the offsets section)
//   68  u32    payload_crc      (CRC-32 of the payload section)
//   72  u8[20] reserved         (zero)
//   92  u32    header_crc       (CRC-32 of header bytes [0, 92))
//
// Versioning policy: `version` is a hard compatibility fence — readers
// reject any version they don't implement, with the found/expected pair in
// the error. Additive evolution uses `flags` + `reserved` within a version;
// anything that changes the meaning of existing bytes bumps the version.
// Version 2 is reserved for weighted payloads (flag bit0 + a weights
// section); version-1 readers already refuse the flag.

#ifndef CONVPAIRS_GRAPH_IO_SNAPSHOT_FORMAT_H_
#define CONVPAIRS_GRAPH_IO_SNAPSHOT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.h"
#include "util/status.h"

namespace convpairs {

inline constexpr uint8_t kCpsMagic[4] = {'C', 'P', 'S', '1'};
inline constexpr uint32_t kCpsVersion = 1;
inline constexpr uint32_t kCpsEndianCheck = 0x0A0B0C0D;
inline constexpr size_t kCpsHeaderBytes = 96;
inline constexpr uint32_t kCpsFlagWeighted = 1U << 0;

/// Parsed header. Field semantics documented in the layout table above.
struct CpsHeader {
  uint32_t version = kCpsVersion;
  uint32_t flags = 0;
  uint32_t codec_id = 0;
  NodeId num_nodes = 0;
  uint64_t num_directed_edges = 0;
  uint64_t offsets_off = 0;
  uint64_t offsets_bytes = 0;
  uint64_t payload_off = 0;
  uint64_t payload_bytes = 0;
  uint32_t offsets_crc = 0;
  uint32_t payload_crc = 0;
};

/// CRC-32 (IEEE 802.3, reflected) over `data`.
uint32_t Crc32(std::span<const uint8_t> data);

/// Appends the 96-byte serialized header (including its trailing
/// header_crc) to `out`.
void SerializeCpsHeader(const CpsHeader& header, std::vector<uint8_t>* out);

/// Parses and structurally validates the header against the whole file
/// image: magic, version, endianness, header CRC, flag constraints, and
/// that both sections lie inside the file with sizes consistent with
/// num_nodes. Section CRCs are reported back for the caller to verify (the
/// loader checks them against the mapped bytes).
Status ParseCpsHeader(std::span<const uint8_t> file, CpsHeader* out);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_IO_SNAPSHOT_FORMAT_H_
