#include "graph/io/snapshot_io.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/codec/codec.h"
#include "graph/codec/decompressor.h"
#include "util/check.h"

namespace convpairs {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Structural validation of every vertex record: offsets monotone and
/// in-bounds, per-vertex decode succeeds with ids < n, degrees sum to the
/// header's edge count. This is the pass that makes post-Open traversal
/// safe on untrusted files.
template <typename D>
Status ValidateRecords(const CpsHeader& header, const uint32_t* offsets,
                       const uint8_t* payload) {
  const auto start = std::chrono::steady_clock::now();
  if (offsets[0] != 0)
    return Status::InvalidArgument("cps: offsets[0] != 0");
  if (offsets[header.num_nodes] != header.payload_bytes)
    return Status::InvalidArgument(
        "cps: offsets end sentinel != payload size");
  uint64_t total_degree = 0;
  for (NodeId u = 0; u < header.num_nodes; ++u) {
    if (offsets[u] > offsets[u + 1])
      return Status::InvalidArgument(
          "cps: non-monotone offset at vertex " + std::to_string(u));
    uint32_t degree = 0;
    if (!D::Validate(payload + offsets[u], payload + offsets[u + 1],
                     header.num_nodes, &degree))
      return Status::InvalidArgument(
          "cps: malformed neighbor record for vertex " + std::to_string(u));
    total_degree += degree;
  }
  if (total_degree != header.num_directed_edges)
    return Status::InvalidArgument(
        "cps: degree sum " + std::to_string(total_degree) +
        " != header edge count " +
        std::to_string(header.num_directed_edges));
  const auto& instruments = CodecInstruments::Get();
  instruments.decode_ns.Add(static_cast<int64_t>(
      MsSince(start) * 1e6));
  instruments.decoded_edges.Add(static_cast<int64_t>(total_degree));
  instruments.decoded_bytes.Add(static_cast<int64_t>(header.payload_bytes));
  return Status::OK();
}

}  // namespace

Status WriteCpsSnapshot(const Graph& g, const std::string& path,
                        uint32_t codec_id) {
  if (g.is_weighted())
    return Status::InvalidArgument(
        "cps version 1 is unweighted-only; cannot encode weighted graph");

  EncodedAdjacency enc;
  if (codec_id == NopDecompressor::kCodecId) {
    enc = EncodeAdjacency<NopDecompressor>(g);
  } else if (codec_id == VarintDecompressor::kCodecId) {
    enc = EncodeAdjacency<VarintDecompressor>(g);
  } else {
    return Status::InvalidArgument("unknown codec id " +
                                   std::to_string(codec_id));
  }

  CpsHeader header;
  header.flags = 0;
  header.codec_id = codec_id;
  header.num_nodes = enc.num_nodes;
  header.num_directed_edges = enc.num_directed_edges;
  header.offsets_off = kCpsHeaderBytes;
  header.offsets_bytes = 4 * (static_cast<uint64_t>(enc.num_nodes) + 1);
  header.payload_off = header.offsets_off + header.offsets_bytes;
  header.payload_bytes = enc.bytes.size();
  header.offsets_crc = Crc32(
      {reinterpret_cast<const uint8_t*>(enc.offsets.data()),
       static_cast<size_t>(header.offsets_bytes)});
  header.payload_crc = Crc32(enc.bytes);

  std::vector<uint8_t> head;
  head.reserve(kCpsHeaderBytes);
  SerializeCpsHeader(header, &head);
  CONVPAIRS_CHECK_EQ(head.size(), kCpsHeaderBytes);

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return Status::IoError("cannot open '" + path + "' for write");
  file.write(reinterpret_cast<const char*>(head.data()),
             static_cast<std::streamsize>(head.size()));
  file.write(reinterpret_cast<const char*>(enc.offsets.data()),
             static_cast<std::streamsize>(header.offsets_bytes));
  file.write(reinterpret_cast<const char*>(enc.bytes.data()),
             static_cast<std::streamsize>(enc.bytes.size()));
  file.flush();
  if (!file) return Status::IoError("short write to '" + path + "'");
  return Status::OK();
}

StatusOr<CpsSnapshot> CpsSnapshot::Open(const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();

  CpsSnapshot snap;
  snap.file_ = std::move(mapped).value();
  CONVPAIRS_RETURN_IF_ERROR(
      ParseCpsHeader(snap.file_.bytes(), &snap.header_));

  const uint8_t* base = snap.file_.data();
  const std::span<const uint8_t> offsets_bytes{
      base + snap.header_.offsets_off,
      static_cast<size_t>(snap.header_.offsets_bytes)};
  const std::span<const uint8_t> payload_bytes{
      base + snap.header_.payload_off,
      static_cast<size_t>(snap.header_.payload_bytes)};
  if (Crc32(offsets_bytes) != snap.header_.offsets_crc)
    return Status::InvalidArgument("cps: offsets section checksum mismatch");
  if (Crc32(payload_bytes) != snap.header_.payload_crc)
    return Status::InvalidArgument("cps: payload section checksum mismatch");

  // offsets_off is 4-aligned (96) and mmap bases are page-aligned, so the
  // reinterpret below reads aligned u32s.
  snap.offsets_ = reinterpret_cast<const uint32_t*>(offsets_bytes.data());
  snap.payload_ = payload_bytes.data();
  if (snap.header_.codec_id == NopDecompressor::kCodecId) {
    CONVPAIRS_RETURN_IF_ERROR(ValidateRecords<NopDecompressor>(
        snap.header_, snap.offsets_, snap.payload_));
  } else {
    CONVPAIRS_RETURN_IF_ERROR(ValidateRecords<VarintDecompressor>(
        snap.header_, snap.offsets_, snap.payload_));
  }

  snap.info_.resident_bytes =
      snap.header_.offsets_bytes + snap.header_.payload_bytes;
  snap.info_.raw_adjacency_bytes =
      snap.header_.num_directed_edges * sizeof(NodeId);
  snap.info_.csr_resident_bytes =
      sizeof(size_t) * (static_cast<uint64_t>(snap.header_.num_nodes) + 1) +
      (sizeof(NodeId) + sizeof(float)) * snap.header_.num_directed_edges;
  snap.info_.ratio_x1000 =
      snap.header_.payload_bytes == 0
          ? 1000
          : static_cast<int64_t>(snap.info_.raw_adjacency_bytes * 1000 /
                                 snap.header_.payload_bytes);
  snap.info_.resident_ratio_x1000 =
      snap.info_.resident_bytes == 0
          ? 1000
          : static_cast<int64_t>(snap.info_.csr_resident_bytes * 1000 /
                                 snap.info_.resident_bytes);
  snap.info_.load_ms = MsSince(start);
  return snap;
}

const char* CpsSnapshot::codec_name() const {
  return header_.codec_id == NopDecompressor::kCodecId
             ? NopDecompressor::kName
             : VarintDecompressor::kName;
}

NopAdjacency CpsSnapshot::NopView() const {
  CONVPAIRS_CHECK_EQ(header_.codec_id, NopDecompressor::kCodecId);
  return NopAdjacency(header_.num_nodes, header_.num_directed_edges,
                      offsets_, payload_);
}

VarintAdjacency CpsSnapshot::VarintView() const {
  CONVPAIRS_CHECK_EQ(header_.codec_id, VarintDecompressor::kCodecId);
  return VarintAdjacency(header_.num_nodes, header_.num_directed_edges,
                         offsets_, payload_);
}

Graph CpsSnapshot::ToGraph() const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<size_t> offsets;
  offsets.reserve(static_cast<size_t>(header_.num_nodes) + 1);
  std::vector<NodeId> adjacency;
  adjacency.reserve(static_cast<size_t>(header_.num_directed_edges));
  offsets.push_back(0);
  for (NodeId u = 0; u < header_.num_nodes; ++u) {
    const uint8_t* begin = payload_ + offsets_[u];
    const uint8_t* end = payload_ + offsets_[u + 1];
    if (header_.codec_id == NopDecompressor::kCodecId) {
      CONVPAIRS_CHECK(NopDecompressor::DecodeAll(begin, end, &adjacency));
    } else {
      CONVPAIRS_CHECK(VarintDecompressor::DecodeAll(begin, end, &adjacency));
    }
    offsets.push_back(adjacency.size());
  }
  const auto& instruments = CodecInstruments::Get();
  instruments.decode_ns.Add(static_cast<int64_t>(MsSince(start) * 1e6));
  instruments.decoded_edges.Add(
      static_cast<int64_t>(header_.num_directed_edges));
  instruments.decoded_bytes.Add(
      static_cast<int64_t>(header_.payload_bytes));
  return Graph::FromCsr(header_.num_nodes, std::move(offsets),
                        std::move(adjacency));
}

}  // namespace convpairs
