// .cps snapshot writer and mmap-backed zero-copy loader.
//
// WriteCpsSnapshot encodes a Graph with the chosen codec and writes the
// container described in graph/io/snapshot_format.h. CpsSnapshot::Open maps
// the file, verifies header + section checksums, and structurally validates
// every vertex record (monotone ids below num_nodes, exact byte
// consumption, skip-table consistency, degree sum == header edge count) —
// so a snapshot that opens OK can be traversed without further bounds
// paranoia, and a truncated / bit-flipped / mislabeled file is rejected
// with a structured Status instead of crashing the server.

#ifndef CONVPAIRS_GRAPH_IO_SNAPSHOT_IO_H_
#define CONVPAIRS_GRAPH_IO_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>

#include "graph/codec/adjacency_view.h"
#include "graph/graph.h"
#include "graph/io/mapped_file.h"
#include "graph/io/snapshot_format.h"
#include "util/status.h"

namespace convpairs {

/// Encodes `g` with `codec_id` (NopDecompressor::kCodecId or
/// VarintDecompressor::kCodecId) and writes it to `path`. Version-1 .cps is
/// unweighted-only: weighted graphs are rejected with InvalidArgument
/// (version 2 reserves a weights section).
Status WriteCpsSnapshot(const Graph& g, const std::string& path,
                        uint32_t codec_id);

/// An opened, validated, memory-mapped snapshot. Move-only; views returned
/// by NopView()/VarintView() borrow the mapping and must not outlive it.
class CpsSnapshot {
 public:
  /// Load-time facts for logs, STATS replies, and BENCH_snapshot_load.
  struct LoadInfo {
    double load_ms = 0.0;          // mmap + validate wall time
    uint64_t resident_bytes = 0;   // mapped offsets + payload bytes
    uint64_t raw_adjacency_bytes = 0;  // u32 neighbor ids alone (codec raw)
    /// What a RAM Graph keeps resident for the same adjacency: size_t
    /// offsets + u32 ids + the f32 unit weights Graph materializes even
    /// for unweighted input. The honest before/after residency baseline.
    uint64_t csr_resident_bytes = 0;
    int64_t ratio_x1000 = 1000;    // raw_adjacency / payload, x1000
    int64_t resident_ratio_x1000 = 1000;  // csr_resident / resident, x1000
  };

  static StatusOr<CpsSnapshot> Open(const std::string& path);

  NodeId num_nodes() const { return header_.num_nodes; }
  uint64_t num_directed_edges() const { return header_.num_directed_edges; }
  uint32_t codec_id() const { return header_.codec_id; }
  const char* codec_name() const;
  const LoadInfo& info() const { return info_; }

  /// Typed adjacency views over the mapping. CHECK-fails on codec
  /// mismatch; call codec_id() first when the codec is data-dependent.
  NopAdjacency NopView() const;
  VarintAdjacency VarintView() const;

  /// Decodes the snapshot into an in-RAM CSR Graph (needed by consumers of
  /// Graph-only APIs: TOPK precompute, validation reports, the CLI
  /// pipeline). Records graph.codec.decode_* telemetry.
  Graph ToGraph() const;

 private:
  CpsSnapshot() = default;

  MappedFile file_;
  CpsHeader header_;
  const uint32_t* offsets_ = nullptr;  // n + 1 entries, inside the mapping
  const uint8_t* payload_ = nullptr;
  LoadInfo info_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_IO_SNAPSHOT_IO_H_
