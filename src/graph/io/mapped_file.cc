#include "graph/io/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace convpairs {

namespace {

std::string ErrnoText(const char* what, const std::string& path) {
  return std::string(what) + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = open(path.c_str(), O_RDONLY | O_CLOEXEC);  // NOLINT(cppcoreguidelines-pro-type-vararg,hicpp-vararg)
  if (fd < 0) return Status::IoError(ErrnoText("cannot open", path));

  struct stat st = {};
  if (fstat(fd, &st) != 0) {
    const Status status = Status::IoError(ErrnoText("cannot stat", path));
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("not a regular file: '" + path + "'");
  }

  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* addr = mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Status::IoError(ErrnoText("cannot mmap", path));
      ::close(fd);
      return status;
    }
    mapped.addr_ = addr;
  }
  // The mapping outlives the descriptor; POSIX keeps it valid after close.
  ::close(fd);
  return mapped;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : addr_(std::exchange(other.addr_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) munmap(addr_, size_);
    addr_ = std::exchange(other.addr_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) munmap(addr_, size_);
}

}  // namespace convpairs
