#include "graph/io/snapshot_format.h"

#include <array>
#include <cstring>
#include <string>

#include "graph/codec/decompressor.h"
// (std::to_string for error text)

namespace convpairs {

namespace {

/// CRC-32 lookup table for the reflected IEEE 802.3 polynomial 0xEDB88320,
/// built once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320U : 0U);
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

Status Corrupt(const std::string& what) {
  return Status::InvalidArgument("cps: " + what);
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> data) {
  const auto& table = Crc32Table();
  uint32_t crc = 0xFFFFFFFFU;
  for (const uint8_t byte : data)
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFF];
  return crc ^ 0xFFFFFFFFU;
}

void SerializeCpsHeader(const CpsHeader& header, std::vector<uint8_t>* out) {
  const size_t start = out->size();
  out->insert(out->end(), std::begin(kCpsMagic), std::end(kCpsMagic));
  PutU32(out, header.version);
  PutU32(out, header.flags);
  PutU32(out, header.codec_id);
  PutU32(out, kCpsEndianCheck);
  PutU32(out, header.num_nodes);
  PutU64(out, header.num_directed_edges);
  PutU64(out, header.offsets_off);
  PutU64(out, header.offsets_bytes);
  PutU64(out, header.payload_off);
  PutU64(out, header.payload_bytes);
  PutU32(out, header.offsets_crc);
  PutU32(out, header.payload_crc);
  out->insert(out->end(), 20, 0);  // reserved
  const uint32_t header_crc =
      Crc32({out->data() + start, kCpsHeaderBytes - 4});
  PutU32(out, header_crc);
}

Status ParseCpsHeader(std::span<const uint8_t> file, CpsHeader* out) {
  if (file.size() < kCpsHeaderBytes)
    return Corrupt("file too small for header (" + std::to_string(file.size()) +
                   " bytes)");
  const uint8_t* p = file.data();
  if (std::memcmp(p, kCpsMagic, sizeof(kCpsMagic)) != 0)
    return Corrupt("bad magic (not a .cps snapshot)");
  const uint32_t stored_crc = ReadU32(p + kCpsHeaderBytes - 4);
  if (Crc32({p, kCpsHeaderBytes - 4}) != stored_crc)
    return Corrupt("header checksum mismatch");

  CpsHeader h;
  h.version = ReadU32(p + 4);
  if (h.version != kCpsVersion)
    return Corrupt("unsupported version " + std::to_string(h.version) +
                   " (reader implements " + std::to_string(kCpsVersion) + ")");
  h.flags = ReadU32(p + 8);
  if ((h.flags & kCpsFlagWeighted) != 0)
    return Corrupt("weighted flag set, but version 1 is unweighted-only");
  if ((h.flags & ~kCpsFlagWeighted) != 0)
    return Corrupt("unknown flag bits set");
  h.codec_id = ReadU32(p + 12);
  if (h.codec_id != NopDecompressor::kCodecId &&
      h.codec_id != VarintDecompressor::kCodecId)
    return Corrupt("unknown codec id " + std::to_string(h.codec_id));
  if (ReadU32(p + 16) != kCpsEndianCheck)
    return Corrupt("endianness marker mismatch (foreign byte order)");
  h.num_nodes = ReadU32(p + 20);
  h.num_directed_edges = ReadU64(p + 24);
  h.offsets_off = ReadU64(p + 32);
  h.offsets_bytes = ReadU64(p + 40);
  h.payload_off = ReadU64(p + 48);
  h.payload_bytes = ReadU64(p + 56);
  h.offsets_crc = ReadU32(p + 64);
  h.payload_crc = ReadU32(p + 68);

  // Section geometry: everything below is arithmetic on u64s already read,
  // so guard against overflow before range-checking against the file size.
  if (h.offsets_off != kCpsHeaderBytes)
    return Corrupt("offsets section not adjacent to header");
  if (h.offsets_bytes != 4 * (static_cast<uint64_t>(h.num_nodes) + 1))
    return Corrupt("offsets section size inconsistent with num_nodes");
  if (h.payload_off % 4 != 0) return Corrupt("payload section misaligned");
  if (h.payload_off != h.offsets_off + h.offsets_bytes)
    return Corrupt("payload section not adjacent to offsets");
  if (h.payload_bytes > file.size() ||
      h.payload_off > file.size() - h.payload_bytes)
    return Corrupt("sections extend past end of file (truncated?)");
  if (h.payload_off + h.payload_bytes != file.size())
    return Corrupt("trailing bytes after payload section");

  *out = h;
  return Status::OK();
}

}  // namespace convpairs
