// Read-only memory-mapped file (RAII).
//
// This module is the repo's single home for raw file-descriptor and mmap
// syscalls — analyzer invariant 10 confines them to src/graph/io/ the same
// way invariant 8 confines sockets to src/server/socket.cc. Everything else
// opens snapshots through CpsSnapshot (graph/io/snapshot_io.h) or streams
// (<fstream>).

#ifndef CONVPAIRS_GRAPH_IO_MAPPED_FILE_H_
#define CONVPAIRS_GRAPH_IO_MAPPED_FILE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.h"

namespace convpairs {

/// A whole file mapped read-only. Move-only; unmaps on destruction. The
/// mapping is private (copy-on-write semantics are irrelevant: we never
/// write), so concurrent readers share page-cache pages and "loading" a
/// multi-GB snapshot touches no data pages until traversal does.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IoError (errno text included) on
  /// open/stat/map failure; an empty file maps successfully with size 0.
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return static_cast<const uint8_t*>(addr_); }
  size_t size() const { return size_; }
  std::span<const uint8_t> bytes() const { return {data(), size_}; }

 private:
  void* addr_ = nullptr;  // nullptr when empty or default-constructed
  size_t size_ = 0;
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_IO_MAPPED_FILE_H_
