#include "graph/connected_components.h"

#include <algorithm>

#include "util/check.h"

namespace convpairs {

uint32_t ConnectedComponents::GiantComponent() const {
  CONVPAIRS_CHECK_GT(num_components, 0u);
  return static_cast<uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
}

uint64_t ConnectedComponents::DisconnectedPairCount(const Graph& g,
                                                    bool active_only) const {
  // Count active nodes per component, then use
  //   disconnected = C(total,2) - sum_c C(size_c,2).
  std::vector<uint64_t> active_size(num_components, 0);
  uint64_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (active_only && g.degree(u) == 0) continue;
    ++active_size[label[u]];
    ++total;
  }
  uint64_t all_pairs = total * (total - 1) / 2;
  uint64_t connected_pairs = 0;
  for (uint64_t s : active_size) connected_pairs += s * (s - 1) / 2;
  return all_pairs - connected_pairs;
}

ConnectedComponents ComputeConnectedComponents(const Graph& g) {
  ConnectedComponents cc;
  const NodeId n = g.num_nodes();
  cc.label.assign(n, UINT32_MAX);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (cc.label[start] != UINT32_MAX) continue;
    uint32_t comp = cc.num_components++;
    cc.size.push_back(0);
    cc.label[start] = comp;
    stack.push_back(start);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      ++cc.size[comp];
      for (NodeId v : g.neighbors(u)) {
        if (cc.label[v] == UINT32_MAX) {
          cc.label[v] = comp;
          stack.push_back(v);
        }
      }
    }
  }
  return cc;
}

}  // namespace convpairs
