#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace convpairs {
namespace {

constexpr uint32_t kVersion = 1;
constexpr char kGraphMagic[4] = {'C', 'P', 'G', 'B'};
constexpr char kTemporalMagic[4] = {'C', 'P', 'G', 'T'};

// This format is explicitly little-endian; the readers/writers below use
// byte-wise packing so the code is endianness-portable.
void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendF32(std::string* out, float value) {
  uint32_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendU32(out, bits);
}

// Bounds-checked reader cursor.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  Status Expect(const char* magic) {
    if (bytes_.size() < pos_ + 4 ||
        std::memcmp(bytes_.data() + pos_, magic, 4) != 0) {
      return Status::InvalidArgument("bad magic");
    }
    pos_ += 4;
    return Status::OK();
  }

  StatusOr<uint32_t> ReadU32() {
    if (bytes_.size() < pos_ + 4) {
      return Status::InvalidArgument("truncated input");
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  StatusOr<uint64_t> ReadU64() {
    if (bytes_.size() < pos_ + 8) {
      return Status::InvalidArgument("truncated input");
    }
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(bytes_[pos_ + i]))
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  StatusOr<uint8_t> ReadU8() {
    if (bytes_.size() < pos_ + 1) {
      return Status::InvalidArgument("truncated input");
    }
    return static_cast<uint8_t>(bytes_[pos_++]);
  }

  /// Remaining payload bytes — used to validate declared element counts
  /// BEFORE reserving memory for them (a corrupted count must not trigger
  /// a huge allocation).
  size_t Remaining() const { return bytes_.size() - pos_; }

  StatusOr<float> ReadF32() {
    auto bits = ReadU32();
    if (!bits.ok()) return bits.status();
    float value;
    uint32_t raw = *bits;
    std::memcpy(&value, &raw, sizeof(value));
    return value;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_ = 0;
};

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open: " + path);
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream file(path, std::ios::binary);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace

std::string SerializeGraph(const Graph& g) {
  std::string out(kGraphMagic, 4);
  AppendU32(&out, kVersion);
  AppendU32(&out, g.num_nodes());
  auto edges = g.ToEdgeList();
  AppendU64(&out, edges.size());
  out.push_back(g.is_weighted() ? 1 : 0);
  for (const Edge& e : edges) {
    AppendU32(&out, e.u);
    AppendU32(&out, e.v);
    if (g.is_weighted()) AppendF32(&out, e.weight);
  }
  return out;
}

StatusOr<Graph> DeserializeGraph(const std::string& bytes,
                                 uint32_t max_nodes) {
  Reader reader(bytes);
  CONVPAIRS_RETURN_IF_ERROR(reader.Expect(kGraphMagic));
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported version");
  }
  auto num_nodes = reader.ReadU32();
  if (!num_nodes.ok()) return num_nodes.status();
  if (*num_nodes > max_nodes) {
    return Status::InvalidArgument("node count exceeds the allocation cap");
  }
  auto num_edges = reader.ReadU64();
  if (!num_edges.ok()) return num_edges.status();
  auto weighted = reader.ReadU8();
  if (!weighted.ok()) return weighted.status();

  // Validate the declared count against the actual payload before
  // allocating: each edge occupies at least 8 bytes.
  size_t bytes_per_edge = *weighted != 0 ? 12 : 8;
  if (*num_edges > reader.Remaining() / bytes_per_edge) {
    return Status::InvalidArgument("edge count exceeds payload");
  }

  std::vector<Edge> edges;
  edges.reserve(*num_edges);
  for (uint64_t i = 0; i < *num_edges; ++i) {
    auto u = reader.ReadU32();
    auto v = reader.ReadU32();
    if (!u.ok() || !v.ok()) return Status::InvalidArgument("truncated edges");
    float weight = 1.0f;
    if (*weighted != 0) {
      auto w = reader.ReadF32();
      if (!w.ok()) return w.status();
      weight = *w;
    }
    if (*u >= *num_nodes || *v >= *num_nodes) {
      return Status::InvalidArgument("edge endpoint out of range");
    }
    edges.push_back({*u, *v, weight});
  }
  if (!reader.AtEnd()) return Status::InvalidArgument("trailing bytes");
  return Graph::FromEdges(*num_nodes, edges);
}

std::string SerializeTemporalGraph(const TemporalGraph& g) {
  std::string out(kTemporalMagic, 4);
  AppendU32(&out, kVersion);
  AppendU32(&out, g.num_nodes());
  AppendU64(&out, g.num_events());
  bool weighted = false;
  for (const TimedEdge& e : g.events()) {
    if (e.weight != 1.0f) {
      weighted = true;
      break;
    }
  }
  out.push_back(weighted ? 1 : 0);
  for (const TimedEdge& e : g.events()) {
    AppendU32(&out, e.u);
    AppendU32(&out, e.v);
    AppendU32(&out, e.time);
    if (weighted) AppendF32(&out, e.weight);
  }
  return out;
}

StatusOr<TemporalGraph> DeserializeTemporalGraph(const std::string& bytes) {
  Reader reader(bytes);
  CONVPAIRS_RETURN_IF_ERROR(reader.Expect(kTemporalMagic));
  auto version = reader.ReadU32();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported version");
  }
  auto num_nodes = reader.ReadU32();
  if (!num_nodes.ok()) return num_nodes.status();
  auto num_events = reader.ReadU64();
  if (!num_events.ok()) return num_events.status();
  auto weighted = reader.ReadU8();
  if (!weighted.ok()) return weighted.status();

  size_t bytes_per_event = *weighted != 0 ? 16 : 12;
  if (*num_events > reader.Remaining() / bytes_per_event) {
    return Status::InvalidArgument("event count exceeds payload");
  }

  std::vector<TimedEdge> events;
  events.reserve(*num_events);
  for (uint64_t i = 0; i < *num_events; ++i) {
    auto u = reader.ReadU32();
    auto v = reader.ReadU32();
    auto t = reader.ReadU32();
    if (!u.ok() || !v.ok() || !t.ok()) {
      return Status::InvalidArgument("truncated events");
    }
    float weight = 1.0f;
    if (*weighted != 0) {
      auto w = reader.ReadF32();
      if (!w.ok()) return w.status();
      weight = *w;
    }
    if (*u >= *num_nodes || *v >= *num_nodes) {
      return Status::InvalidArgument("event endpoint out of range");
    }
    events.push_back({*u, *v, *t, weight});
  }
  if (!reader.AtEnd()) return Status::InvalidArgument("trailing bytes");
  return TemporalGraph(std::move(events));
}

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  return WriteFileBytes(path, SerializeGraph(g));
}

StatusOr<Graph> ReadGraphBinary(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeGraph(*bytes);
}

Status WriteTemporalGraphBinary(const TemporalGraph& g,
                                const std::string& path) {
  return WriteFileBytes(path, SerializeTemporalGraph(g));
}

StatusOr<TemporalGraph> ReadTemporalGraphBinary(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DeserializeTemporalGraph(*bytes);
}

}  // namespace convpairs
