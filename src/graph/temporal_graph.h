// Evolving graph as a time-ordered edge-insertion stream.
//
// The paper models a dynamic graph as a sequence of slices of node/edge
// insertions; G_t is the aggregation of all slices up to t (Section 3).
// TemporalGraph stores the stream and materializes CSR snapshots at a given
// time or edge-fraction. All snapshots share the full node-id space so that
// distance arrays from different snapshots are directly comparable.

#ifndef CONVPAIRS_GRAPH_TEMPORAL_GRAPH_H_
#define CONVPAIRS_GRAPH_TEMPORAL_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"

namespace convpairs {

/// Time-ordered stream of undirected edge insertions.
class TemporalGraph {
 public:
  TemporalGraph() = default;

  /// Builds from a list of timed edges; the list is stably sorted by time.
  explicit TemporalGraph(std::vector<TimedEdge> edges);

  /// Appends an edge at a time >= the last appended time.
  void AddEdge(NodeId u, NodeId v, uint32_t time, float weight = 1.0f);

  /// Number of edge-insertion events (parallel insertions are kept here;
  /// snapshots deduplicate).
  size_t num_events() const { return edges_.size(); }

  /// One past the largest node id seen (the shared id space of snapshots).
  NodeId num_nodes() const { return num_nodes_; }

  /// Largest timestamp in the stream (0 if empty).
  uint32_t max_time() const;

  std::span<const TimedEdge> events() const { return edges_; }

  /// Snapshot with all edges whose time <= `time`.
  Graph SnapshotAtTime(uint32_t time) const;

  /// Snapshot with the first round(fraction * num_events) events,
  /// the paper's "first p percent of the edges" split. fraction in [0, 1].
  Graph SnapshotAtFraction(double fraction) const;

  /// Events in the half-open prefix range (used to derive the "new edges"
  /// between two fraction snapshots).
  std::vector<Edge> EdgesInFractionRange(double from_fraction,
                                         double to_fraction) const;

 private:
  size_t PrefixCount(double fraction) const;

  std::vector<TimedEdge> edges_;
  NodeId num_nodes_ = 0;
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_TEMPORAL_GRAPH_H_
