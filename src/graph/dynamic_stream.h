// Evolving graph with BOTH edge insertions and deletions.
//
// The paper restricts itself to insertions ("As is the most common case
// with social networks, we consider only node and edge insertions"); this
// module is the substrate for the diverging-pairs extension (DESIGN.md §6):
// with deletions, shortest-path distances can grow, and the symmetric
// question — which pairs drifted apart the most — becomes well-posed.

#ifndef CONVPAIRS_GRAPH_DYNAMIC_STREAM_H_
#define CONVPAIRS_GRAPH_DYNAMIC_STREAM_H_

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/temporal_graph.h"
#include "graph/types.h"

namespace convpairs {

enum class EdgeOp : uint8_t { kInsert, kDelete };

/// One timestamped stream event.
struct EdgeEvent {
  NodeId u = 0;
  NodeId v = 0;
  uint32_t time = 0;
  EdgeOp op = EdgeOp::kInsert;
  float weight = 1.0f;

  friend bool operator==(const EdgeEvent&, const EdgeEvent&) = default;
};

/// Time-ordered stream of edge insertions and deletions. Deleting an edge
/// that is not live at that point of the stream is a stream-construction
/// error and aborts (streams are produced by generators or validated I/O).
class DynamicGraphStream {
 public:
  DynamicGraphStream() = default;

  /// Imports an insert-only stream.
  explicit DynamicGraphStream(const TemporalGraph& inserts);

  /// Appends an insertion at a time >= the last event's time.
  void AddEdge(NodeId u, NodeId v, uint32_t time, float weight = 1.0f);

  /// Appends a deletion at a time >= the last event's time. The edge must
  /// be live (inserted more times than deleted) at the end of the current
  /// stream.
  void RemoveEdge(NodeId u, NodeId v, uint32_t time);

  size_t num_events() const { return events_.size(); }
  NodeId num_nodes() const { return num_nodes_; }
  const std::vector<EdgeEvent>& events() const { return events_; }

  /// Graph of edges live after applying all events with time <= `time`.
  Graph SnapshotAtTime(uint32_t time) const;

  /// Graph after applying the first round(fraction * num_events) events.
  Graph SnapshotAtFraction(double fraction) const;

 private:
  Graph SnapshotOfPrefix(size_t event_count) const;

  std::vector<EdgeEvent> events_;
  NodeId num_nodes_ = 0;
  // Live multiplicity per edge key at the end of the stream, to validate
  // deletions as they are appended.
  std::unordered_map<uint64_t, int> live_counts_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_DYNAMIC_STREAM_H_
