// LEB128 varint primitives for the adjacency codec (DESIGN.md §15).
//
// Unsigned little-endian base-128: each byte carries 7 payload bits, the high
// bit marks continuation. Small gaps (the common case for delta-coded sorted
// neighbor lists) encode in one byte; a u32 never needs more than five.
//
// Decoders are bounds-checked against an explicit limit and return nullptr on
// malformed input (truncation or overlong encoding) instead of reading past
// the buffer — the snapshot loader leans on this to reject corrupt files.

#ifndef CONVPAIRS_GRAPH_CODEC_VARINT_H_
#define CONVPAIRS_GRAPH_CODEC_VARINT_H_

#include <cstdint>
#include <vector>

namespace convpairs {

/// Maximum encoded size of a u32 (ceil(32/7) bytes).
inline constexpr int kMaxVarint32Bytes = 5;
/// Maximum encoded size of a u64 (ceil(64/7) bytes).
inline constexpr int kMaxVarint64Bytes = 10;

/// Appends the LEB128 encoding of `v` to `out`.
inline void PutVarint32(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Appends the LEB128 encoding of `v` to `out`.
inline void PutVarint64(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Decodes one u32 from [p, limit). Returns the position past the encoded
/// value, or nullptr if the input is truncated or the value overflows 32
/// bits. `*v` is unspecified on failure.
inline const uint8_t* GetVarint32(const uint8_t* p, const uint8_t* limit,
                                  uint32_t* v) {
  uint32_t result = 0;
  for (int shift = 0; shift < 35 && p < limit; shift += 7) {
    uint32_t byte = *p++;
    if (shift == 28 && (byte & 0xF0) != 0) return nullptr;  // overflows u32
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;  // ran off the buffer or >5 continuation bytes
}

/// Decodes one u64 from [p, limit); same contract as GetVarint32.
inline const uint8_t* GetVarint64(const uint8_t* p, const uint8_t* limit,
                                  uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 70 && p < limit; shift += 7) {
    uint64_t byte = *p++;
    if (shift == 63 && (byte & 0xFE) != 0) return nullptr;  // overflows u64
    result |= (byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
  }
  return nullptr;
}

/// Decodes one u32 known to be well-formed — no limit or overflow checks.
/// Only for bytes that already passed a validating decode (the snapshot
/// loader's Validate pass); the single-byte case, which dominates delta-gap
/// streams, is one load and one compare.
inline const uint8_t* GetVarint32Trusted(const uint8_t* p, uint32_t* v) {
  uint32_t result = *p++;
  if (result < 0x80) {
    *v = result;
    return p;
  }
  result &= 0x7F;
  uint32_t shift = 7;
  uint32_t byte;
  do {
    byte = *p++;
    result |= (byte & 0x7F) << shift;
    shift += 7;
  } while (byte & 0x80);
  *v = result;
  return p;
}

/// Number of bytes PutVarint32 would append for `v`.
inline int Varint32Size(uint32_t v) {
  int size = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++size;
  }
  return size;
}

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_CODEC_VARINT_H_
