#include "graph/codec/codec.h"

#include "graph/codec/decompressor.h"
#include "obs/registry.h"
#include "util/check.h"

namespace convpairs {

const CodecInstruments& CodecInstruments::Get() {
  static const CodecInstruments instruments = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return CodecInstruments{registry.GetCounter("graph.codec.encoded_bytes"),
                            registry.GetCounter("graph.codec.raw_bytes"),
                            registry.GetGauge("graph.codec.ratio_x1000"),
                            registry.GetCounter("graph.codec.decoded_bytes"),
                            registry.GetCounter("graph.codec.decoded_edges"),
                            registry.GetCounter("graph.codec.decode_ns")};
  }();
  return instruments;
}

template <typename D>
EncodedAdjacency EncodeAdjacency(const Graph& g) {
  EncodedAdjacency enc;
  enc.num_nodes = g.num_nodes();
  enc.offsets.reserve(static_cast<size_t>(g.num_nodes()) + 1);
  enc.offsets.push_back(0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.neighbors(u);
    D::EncodeList(nbrs, &enc.bytes);
    CONVPAIRS_CHECK_LE(enc.bytes.size(), 0xFFFFFFFFULL);
    enc.offsets.push_back(static_cast<uint32_t>(enc.bytes.size()));
    enc.num_directed_edges += nbrs.size();
  }
  const auto& instruments = CodecInstruments::Get();
  instruments.encoded_bytes.Add(static_cast<int64_t>(enc.bytes.size()));
  instruments.raw_bytes.Add(static_cast<int64_t>(enc.raw_adjacency_bytes()));
  instruments.ratio_x1000.Set(enc.ratio_x1000());
  return enc;
}

template EncodedAdjacency EncodeAdjacency<NopDecompressor>(const Graph& g);
template EncodedAdjacency EncodeAdjacency<VarintDecompressor>(const Graph& g);

}  // namespace convpairs
