// Pluggable adjacency decompressors (DESIGN.md §15).
//
// A Decompressor is a stateless policy type describing how one vertex's
// sorted neighbor list is laid out inside a byte range. The compressed
// container and the traversal views (graph/codec/adjacency_view.h) are
// written once against this concept; the codec id stored in a .cps snapshot
// header selects which instantiation gets used at load time.
//
// Concept (all members static):
//   kCodecId     — wire id stored in snapshot headers (stable, never reuse).
//   kName        — human-readable name for logs / STATS.
//   kZeroCopy    — true when the payload bytes ARE the neighbor array, so
//                  views can return spans into the mapping without decoding.
//   EncodeList   — appends the encoding of a sorted, strictly increasing
//                  neighbor list to a byte buffer.
//   Degree       — reads the list length without decoding the list.
//   DecodeAll    — appends every neighbor to a scratch vector; false on
//                  malformed bytes (never reads past `end`).
//   VisitBlocks  — decodes block-at-a-time into scratch and hands each block
//                  to a callback that may stop early (bottom-up BFS pulls).
//   Validate     — full structural check used by the snapshot loader:
//                  exact byte consumption, monotone ids below num_nodes,
//                  skip-table consistency.
//
// Non-zero-copy codecs additionally provide trusted fast paths for bytes
// that already passed Validate — what the traversal views run, since every
// CompressedAdjacency wraps either a freshly encoded buffer or a payload
// the snapshot loader validated at Open():
//   DecodeListTrusted     — whole list into the front of a scratch vector;
//   VisitBlocksTrusted    — block-at-a-time with block-granular early exit;
//   VisitEdgesTrusted     — fn(id) per neighbor straight from the decode
//                           registers, no scratch round-trip (top-down push);
//   VisitEdgesUntilTrusted — per-edge with early exit: decode stops the
//                           instant fn returns false (bottom-up pulls).
// Both skip bounds/monotonicity checks and take the single-byte-gap fast
// path, roughly quadrupling decode bandwidth over the checked decoders.
//
// Two implementations ship: NopDecompressor (codec 0) keeps the uncompressed
// path first-class — raw little-endian u32 neighbors, zero-copy views — and
// VarintDecompressor (codec 1) is the delta-gap + LEB128 block codec.

#ifndef CONVPAIRS_GRAPH_CODEC_DECOMPRESSOR_H_
#define CONVPAIRS_GRAPH_CODEC_DECOMPRESSOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "graph/codec/varint.h"
#include "graph/types.h"

namespace convpairs {

/// Neighbors per codec block. Gap-decoding is sequential within a block;
/// the per-block skip table lets a reader land on any block independently,
/// so 64 bounds the work for a point probe and matches the MS-BFS lane
/// width (one block decode feeds one full mask-merge sweep).
inline constexpr uint32_t kCodecBlockEdges = 64;

/// Codec 0: uncompressed little-endian u32 neighbors, 4 bytes each.
struct NopDecompressor {
  static constexpr uint8_t kCodecId = 0;
  static constexpr const char* kName = "nop";
  static constexpr bool kZeroCopy = true;

  static void EncodeList(std::span<const NodeId> sorted,
                         std::vector<uint8_t>* out) {
    const size_t pos = out->size();
    out->resize(pos + sorted.size_bytes());
    if (!sorted.empty())
      std::memcpy(out->data() + pos, sorted.data(), sorted.size_bytes());
  }

  static uint32_t Degree(const uint8_t* begin, const uint8_t* end) {
    return static_cast<uint32_t>((end - begin) / sizeof(NodeId));
  }

  /// The payload bytes reinterpreted as the neighbor array. Callers must
  /// guarantee 4-byte alignment of `begin`; both the encoder (vector
  /// storage) and the snapshot mapping (8-aligned sections, 4-byte records)
  /// do.
  static std::span<const NodeId> View(const uint8_t* begin,
                                      const uint8_t* end) {
    return {reinterpret_cast<const NodeId*>(begin), Degree(begin, end)};
  }

  static bool DecodeAll(const uint8_t* begin, const uint8_t* end,
                        std::vector<NodeId>* out) {
    if ((end - begin) % sizeof(NodeId) != 0) return false;
    const auto view = View(begin, end);
    out->insert(out->end(), view.begin(), view.end());
    return true;
  }

  template <typename Fn>
  static bool VisitBlocks(const uint8_t* begin, const uint8_t* end,
                          std::vector<NodeId>& /*scratch*/, Fn&& fn) {
    if ((end - begin) % sizeof(NodeId) != 0) return false;
    const auto view = View(begin, end);
    for (size_t lo = 0; lo < view.size(); lo += kCodecBlockEdges) {
      const size_t len = std::min<size_t>(kCodecBlockEdges, view.size() - lo);
      if (!fn(view.subspan(lo, len))) return true;
    }
    return true;
  }

  static bool Validate(const uint8_t* begin, const uint8_t* end,
                       NodeId num_nodes, uint32_t* degree) {
    if ((end - begin) % sizeof(NodeId) != 0) return false;
    const auto view = View(begin, end);
    for (size_t i = 0; i < view.size(); ++i) {
      if (view[i] >= num_nodes) return false;
      if (i > 0 && view[i] <= view[i - 1]) return false;
    }
    *degree = static_cast<uint32_t>(view.size());
    return true;
  }
};

/// Codec 1: delta-gap + LEB128 varint, 64-neighbor blocks.
///
/// Per-vertex layout (empty vertices occupy zero bytes):
///   varint32(degree)
///   if degree > 64: u32le skip[num_blocks - 1]  — byte offset of block b
///     (b >= 1) relative to the first block's start
///   blocks: each opens with varint32(first id, absolute), then
///     varint32(gap) per remaining neighbor, gap = id[i] - id[i-1] >= 1
struct VarintDecompressor {
  static constexpr uint8_t kCodecId = 1;
  static constexpr const char* kName = "varint";
  static constexpr bool kZeroCopy = false;

  static void EncodeList(std::span<const NodeId> sorted,
                         std::vector<uint8_t>* out) {
    if (sorted.empty()) return;
    const auto degree = static_cast<uint32_t>(sorted.size());
    PutVarint32(out, degree);
    const size_t num_blocks =
        (degree + kCodecBlockEdges - 1) / kCodecBlockEdges;
    const size_t skip_pos = out->size();
    if (num_blocks > 1) out->resize(skip_pos + 4 * (num_blocks - 1));
    const size_t data_start = out->size();
    for (size_t b = 0; b < num_blocks; ++b) {
      if (b > 0) {
        const auto rel = static_cast<uint32_t>(out->size() - data_start);
        std::memcpy(out->data() + skip_pos + 4 * (b - 1), &rel, 4);
      }
      const size_t lo = b * kCodecBlockEdges;
      const size_t hi = std::min<size_t>(degree, lo + kCodecBlockEdges);
      PutVarint32(out, sorted[lo]);
      for (size_t i = lo + 1; i < hi; ++i)
        PutVarint32(out, sorted[i] - sorted[i - 1]);
    }
  }

  static uint32_t Degree(const uint8_t* begin, const uint8_t* end) {
    if (begin == end) return 0;
    uint32_t degree = 0;
    return GetVarint32(begin, end, &degree) != nullptr ? degree : 0;
  }

  static bool DecodeAll(const uint8_t* begin, const uint8_t* end,
                        std::vector<NodeId>* out) {
    if (begin == end) return true;
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32(begin, end, &degree);
    if (p == nullptr || degree == 0) return false;
    p = SkipSkipTable(p, end, degree);
    if (p == nullptr) return false;
    const size_t base = out->size();
    out->resize(base + degree);
    NodeId* dst = out->data() + base;
    for (uint32_t i = 0; i < degree; ++i) {
      uint32_t v = 0;
      p = GetVarint32(p, end, &v);
      if (p == nullptr) return false;
      if (i % kCodecBlockEdges == 0) {
        dst[i] = v;  // block-opening absolute id
      } else {
        if (v == 0 || v > kMaxNodeId - dst[i - 1]) return false;
        dst[i] = dst[i - 1] + v;
      }
    }
    return p == end;
  }

  template <typename Fn>
  static bool VisitBlocks(const uint8_t* begin, const uint8_t* end,
                          std::vector<NodeId>& scratch, Fn&& fn) {
    if (begin == end) return true;
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32(begin, end, &degree);
    if (p == nullptr || degree == 0) return false;
    p = SkipSkipTable(p, end, degree);
    if (p == nullptr) return false;
    scratch.resize(kCodecBlockEdges);
    for (uint32_t lo = 0; lo < degree; lo += kCodecBlockEdges) {
      const uint32_t len = std::min(kCodecBlockEdges, degree - lo);
      for (uint32_t i = 0; i < len; ++i) {
        uint32_t v = 0;
        p = GetVarint32(p, end, &v);
        if (p == nullptr) return false;
        if (i == 0) {
          scratch[0] = v;
        } else {
          if (v == 0 || v > kMaxNodeId - scratch[i - 1]) return false;
          scratch[i] = scratch[i - 1] + v;
        }
      }
      if (!fn(std::span<const NodeId>(scratch.data(), len))) return true;
    }
    return true;
  }

  static std::span<const NodeId> DecodeListTrusted(
      const uint8_t* begin, const uint8_t* end, std::vector<NodeId>& scratch) {
    if (begin == end) return {};
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32Trusted(begin, &degree);
    p = SkipTrusted(p, degree);
    if (scratch.size() < degree) scratch.resize(degree);
    NodeId* dst = scratch.data();
    uint32_t i = 0;
    while (i < degree) {
      const uint32_t len = std::min(kCodecBlockEdges, degree - i);
      uint32_t v = 0;
      p = GetVarint32Trusted(p, &v);
      NodeId prev = v;  // block-opening absolute id
      dst[i++] = prev;
      for (uint32_t j = 1; j < len; ++j) {
        p = GetVarint32Trusted(p, &v);
        prev += v;
        dst[i++] = prev;
      }
    }
    (void)end;
    return {scratch.data(), degree};
  }

  template <typename Fn>
  static void VisitBlocksTrusted(const uint8_t* begin, const uint8_t* end,
                                 std::vector<NodeId>& scratch, Fn&& fn) {
    if (begin == end) return;
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32Trusted(begin, &degree);
    p = SkipTrusted(p, degree);
    if (scratch.size() < kCodecBlockEdges) scratch.resize(kCodecBlockEdges);
    NodeId* dst = scratch.data();
    for (uint32_t lo = 0; lo < degree; lo += kCodecBlockEdges) {
      const uint32_t len = std::min(kCodecBlockEdges, degree - lo);
      uint32_t v = 0;
      p = GetVarint32Trusted(p, &v);
      NodeId prev = v;
      dst[0] = prev;
      for (uint32_t j = 1; j < len; ++j) {
        p = GetVarint32Trusted(p, &v);
        prev += v;
        dst[j] = prev;
      }
      if (!fn(std::span<const NodeId>(dst, len))) return;
    }
    (void)end;
  }

  /// Per-edge early-exit decode: fn(id) until fn returns false or the list
  /// ends; returns the number of ids decoded. The bottom-up pull shape — a
  /// node stops the moment its wanted lanes are covered, and unlike
  /// VisitBlocksTrusted the decode stops with it, mid-block.
  template <typename Fn>
  static uint32_t VisitEdgesUntilTrusted(const uint8_t* begin,
                                         const uint8_t* end, Fn&& fn) {
    if (begin == end) return 0;
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32Trusted(begin, &degree);
    p = SkipTrusted(p, degree);
    uint32_t decoded = 0;
    for (uint32_t lo = 0; lo < degree; lo += kCodecBlockEdges) {
      const uint32_t len = std::min(kCodecBlockEdges, degree - lo);
      uint32_t v = 0;
      p = GetVarint32Trusted(p, &v);
      NodeId prev = v;  // block-opening absolute id
      ++decoded;
      if (!fn(prev)) return decoded;
      for (uint32_t j = 1; j < len; ++j) {
        p = GetVarint32Trusted(p, &v);
        prev += v;
        ++decoded;
        if (!fn(prev)) return decoded;
      }
    }
    (void)end;
    return decoded;
  }

  template <typename Fn>
  static uint32_t VisitEdgesTrusted(const uint8_t* begin, const uint8_t* end,
                                    Fn&& fn) {
    if (begin == end) return 0;
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32Trusted(begin, &degree);
    p = SkipTrusted(p, degree);
    for (uint32_t lo = 0; lo < degree; lo += kCodecBlockEdges) {
      const uint32_t len = std::min(kCodecBlockEdges, degree - lo);
      uint32_t v = 0;
      p = GetVarint32Trusted(p, &v);
      NodeId prev = v;  // block-opening absolute id
      fn(prev);
      for (uint32_t j = 1; j < len; ++j) {
        p = GetVarint32Trusted(p, &v);
        prev += v;
        fn(prev);
      }
    }
    (void)end;
    return degree;
  }

  static bool Validate(const uint8_t* begin, const uint8_t* end,
                       NodeId num_nodes, uint32_t* degree_out) {
    if (begin == end) {
      *degree_out = 0;
      return true;
    }
    uint32_t degree = 0;
    const uint8_t* p = GetVarint32(begin, end, &degree);
    if (p == nullptr || degree == 0) return false;
    const size_t num_blocks =
        (degree + kCodecBlockEdges - 1) / kCodecBlockEdges;
    const uint8_t* skips = p;
    p = SkipSkipTable(p, end, degree);
    if (p == nullptr) return false;
    const uint8_t* data_start = p;
    NodeId prev = 0;
    for (uint32_t i = 0; i < degree; ++i) {
      if (i % kCodecBlockEdges == 0 && i > 0) {
        // The skip entry for this block must point at exactly this byte.
        uint32_t rel = 0;
        std::memcpy(&rel, skips + 4 * (i / kCodecBlockEdges - 1), 4);
        if (rel != static_cast<uint32_t>(p - data_start)) return false;
      }
      uint32_t v = 0;
      p = GetVarint32(p, end, &v);
      if (p == nullptr) return false;
      NodeId id = 0;
      if (i % kCodecBlockEdges == 0) {
        id = v;
        if (i > 0 && id <= prev) return false;  // blocks stay sorted
      } else {
        if (v == 0 || v > kMaxNodeId - prev) return false;
        id = prev + v;
      }
      if (id >= num_nodes) return false;
      prev = id;
    }
    if (p != end) return false;  // trailing garbage
    (void)num_blocks;
    *degree_out = degree;
    return true;
  }

 private:
  static constexpr NodeId kMaxNodeId = ~NodeId{0};

  /// Advances past the skip table (present only for multi-block lists).
  static const uint8_t* SkipSkipTable(const uint8_t* p, const uint8_t* end,
                                      uint32_t degree) {
    const size_t num_blocks =
        (degree + kCodecBlockEdges - 1) / kCodecBlockEdges;
    if (num_blocks <= 1) return p;
    const size_t bytes = 4 * (num_blocks - 1);
    if (static_cast<size_t>(end - p) < bytes) return nullptr;
    return p + bytes;
  }

  /// SkipSkipTable for pre-validated records (size is known to be present).
  static const uint8_t* SkipTrusted(const uint8_t* p, uint32_t degree) {
    const size_t num_blocks =
        (degree + kCodecBlockEdges - 1) / kCodecBlockEdges;
    return num_blocks > 1 ? p + 4 * (num_blocks - 1) : p;
  }
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_CODEC_DECOMPRESSOR_H_
