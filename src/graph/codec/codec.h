// Compressed adjacency container: a whole graph's neighbor lists encoded by
// one Decompressor (graph/codec/decompressor.h), plus the graph.codec.*
// telemetry instruments shared by the encoder, the traversal cursors, and
// the snapshot loader.

#ifndef CONVPAIRS_GRAPH_CODEC_CODEC_H_
#define CONVPAIRS_GRAPH_CODEC_CODEC_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "obs/metrics.h"

namespace convpairs {

/// One graph's adjacency, encoded. `offsets` holds n+1 byte offsets into
/// `bytes`; vertex u's record is bytes[offsets[u], offsets[u+1]). This is
/// exactly the in-RAM image of a .cps snapshot's offsets + payload sections,
/// so the encoder, the writer, and the mmap views all share one layout.
struct EncodedAdjacency {
  NodeId num_nodes = 0;
  uint64_t num_directed_edges = 0;  // sum of degrees (2m for undirected)
  /// u32 to match the .cps offsets section (half the index footprint of
  /// u64); the encoder CHECKs the 4 GiB payload ceiling this implies.
  std::vector<uint32_t> offsets;    // size num_nodes + 1
  std::vector<uint8_t> bytes;

  /// Bytes the same adjacency occupies as raw u32 CSR entries.
  uint64_t raw_adjacency_bytes() const {
    return num_directed_edges * sizeof(NodeId);
  }
  /// Compression ratio (raw / encoded), scaled by 1000 for integer gauges.
  int64_t ratio_x1000() const {
    return bytes.empty()
               ? 1000
               : static_cast<int64_t>(raw_adjacency_bytes() * 1000 /
                                      bytes.size());
  }
};

/// Encodes `g`'s neighbor lists with decompressor `D` and records
/// graph.codec.{encoded_bytes,raw_bytes,ratio_x1000}. Instantiated for
/// NopDecompressor and VarintDecompressor in codec.cc.
template <typename D>
EncodedAdjacency EncodeAdjacency(const Graph& g);

/// graph.codec.* instruments. decoded_* accumulate from traversal cursors
/// (flushed per cursor lifetime, never per edge); decode_ns covers the pure
/// decode scans (snapshot validation, ToGraph) where decode time is
/// separable from traversal work.
struct CodecInstruments {
  obs::Counter& encoded_bytes;
  obs::Counter& raw_bytes;
  obs::Gauge& ratio_x1000;
  obs::Counter& decoded_bytes;
  obs::Counter& decoded_edges;
  obs::Counter& decode_ns;

  static const CodecInstruments& Get();
};

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_CODEC_CODEC_H_
