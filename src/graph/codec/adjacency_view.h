// Adjacency views: the seam the traversal engines are templated over.
//
// A view is a cheap, copyable handle describing where one graph's neighbor
// lists live and how to read them. Engines hold a view by value plus one
// `Cursor` — per-engine mutable scratch — so the same BFS code runs over an
// in-RAM CSR (CsrAdjacency, zero decode cost) or a compressed / mapped
// payload (CompressedAdjacency<D>) with identical traversal order and
// therefore bit-identical distances.
//
// The read paths mirror how the engines consume adjacency:
//   Neighbors(u, cursor)              — whole sorted list, materialized;
//   ForEachNeighbor(u, cursor, fn)    — fn(v) per neighbor, decoded straight
//                                       into the callback (top-down push);
//   VisitNeighborsUntil(u, cursor, fn)— fn(v) until it returns false; decode
//                                       stops with it (bottom-up pulls stop
//                                       at the first hit / full lane
//                                       coverage, so decoding the rest of a
//                                       hub's list would be wasted work);
//   VisitBlocks(u, cursor, fn)        — <= 64-neighbor chunks with
//                                       block-granular early exit (bulk
//                                       scans that want span-at-a-time
//                                       access, e.g. decode benches).

#ifndef CONVPAIRS_GRAPH_CODEC_ADJACENCY_VIEW_H_
#define CONVPAIRS_GRAPH_CODEC_ADJACENCY_VIEW_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/codec/codec.h"
#include "graph/codec/decompressor.h"
#include "graph/graph.h"
#include "graph/types.h"
#include "util/check.h"

namespace convpairs {

/// View over an uncompressed in-RAM CSR (a Graph's internal arrays or any
/// equivalent pair of offset/neighbor buffers). Cursor is empty: reads are
/// direct span construction, so engines instantiated with CsrAdjacency
/// compile to exactly the pre-seam code.
class CsrAdjacency {
 public:
  struct Cursor {};

  /// Relative per-edge read cost for the direction-optimizing heuristics
  /// (1.0 = raw CSR scan). See CompressedAdjacency::kDecodeCostFactor.
  static constexpr double kDecodeCostFactor = 1.0;

  explicit CsrAdjacency(const Graph& g)
      : num_nodes_(g.num_nodes()),
        num_directed_edges_(g.adjacency().size()),
        offsets_(g.offsets().data()),
        adjacency_(g.adjacency().data()) {}

  CsrAdjacency(NodeId num_nodes, const size_t* offsets, const NodeId* adjacency)
      : num_nodes_(num_nodes),
        num_directed_edges_(offsets[num_nodes]),
        offsets_(offsets),
        adjacency_(adjacency) {}

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_directed_edges() const { return num_directed_edges_; }

  uint32_t degree(NodeId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  std::span<const NodeId> Neighbors(NodeId u, Cursor& /*cursor*/) const {
    return {adjacency_ + offsets_[u], adjacency_ + offsets_[u + 1]};
  }

  template <typename Fn>
  void ForEachNeighbor(NodeId u, Cursor& cursor, Fn&& fn) const {
    for (const NodeId v : Neighbors(u, cursor)) fn(v);
  }

  template <typename Fn>
  void VisitBlocks(NodeId u, Cursor& cursor, Fn&& fn) const {
    // One maximal block: the early-exit callback breaks out of its own scan.
    const auto nbrs = Neighbors(u, cursor);
    if (!nbrs.empty()) std::forward<Fn>(fn)(nbrs);
  }

  template <typename Fn>
  void VisitNeighborsUntil(NodeId u, Cursor& cursor, Fn&& fn) const {
    for (const NodeId v : Neighbors(u, cursor)) {
      if (!fn(v)) return;
    }
  }

 private:
  NodeId num_nodes_;
  uint64_t num_directed_edges_;
  const size_t* offsets_;
  const NodeId* adjacency_;
};

/// View over encoded adjacency (graph/codec/codec.h layout, which is also
/// the byte-for-byte image of a .cps snapshot's offsets + payload sections).
/// Decode goes through D; zero-copy codecs (NopDecompressor) hand back
/// spans straight into the payload, so the "compressed" machinery serves
/// uncompressed mmap snapshots at full speed.
template <typename D>
class CompressedAdjacency {
 public:
  /// Per-engine scratch: the reusable decode buffer plus decode-volume
  /// telemetry, flushed to graph.codec.* once per cursor lifetime.
  struct Cursor {
    std::vector<NodeId> scratch;
    uint64_t decoded_edges = 0;
    uint64_t decoded_bytes = 0;

    Cursor() = default;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;
    ~Cursor() {
      if (decoded_edges == 0) return;
      const auto& instruments = CodecInstruments::Get();
      instruments.decoded_edges.Add(static_cast<int64_t>(decoded_edges));
      instruments.decoded_bytes.Add(static_cast<int64_t>(decoded_bytes));
    }
  };

  /// Relative per-edge read cost fed to the traversal engines' direction
  /// heuristics. Bottom-up sweeps re-read unfinished vertices' lists every
  /// dense level, while top-down reads each list exactly once per
  /// traversal — so when reading means decoding, the switch must demand a
  /// correspondingly denser frontier before bottom-up pays. 2.0 measured
  /// best for varint on BA-50k all-pairs with the per-edge early-exit pull
  /// (VisitNeighborsUntil): beat 1.0 and 4.0 by ~1.5%, and disabling
  /// bottom-up outright (1e9) by ~25%. Distances never depend on this; it
  /// only moves work.
  static constexpr double kDecodeCostFactor = D::kZeroCopy ? 1.0 : 2.0;

  CompressedAdjacency(NodeId num_nodes, uint64_t num_directed_edges,
                      const uint32_t* offsets, const uint8_t* bytes)
      : num_nodes_(num_nodes),
        num_directed_edges_(num_directed_edges),
        offsets_(offsets),
        bytes_(bytes) {}

  explicit CompressedAdjacency(const EncodedAdjacency& enc)
      : CompressedAdjacency(enc.num_nodes, enc.num_directed_edges,
                            enc.offsets.data(), enc.bytes.data()) {}

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_directed_edges() const { return num_directed_edges_; }

  uint32_t degree(NodeId u) const {
    return D::Degree(bytes_ + offsets_[u], bytes_ + offsets_[u + 1]);
  }

  /// Vertex u's full sorted neighbor list. Zero-copy codecs return a span
  /// into the payload; others decode into cursor.scratch (valid until the
  /// next read through the same cursor). Decode runs the codec's trusted
  /// fast path: every view wraps bytes that already passed Validate —
  /// either a buffer EncodeAdjacency just produced or a .cps payload the
  /// snapshot loader validated at Open().
  std::span<const NodeId> Neighbors(NodeId u, Cursor& cursor) const {
    const uint8_t* begin = bytes_ + offsets_[u];
    const uint8_t* end = bytes_ + offsets_[u + 1];
    if constexpr (D::kZeroCopy) {
      return D::View(begin, end);
    } else {
      const auto list = D::DecodeListTrusted(begin, end, cursor.scratch);
      cursor.decoded_edges += list.size();
      cursor.decoded_bytes += static_cast<uint64_t>(end - begin);
      return list;
    }
  }

  /// Calls fn(v) for every neighbor of u in sorted order — the top-down
  /// push path. Non-zero-copy codecs decode each id straight into the
  /// callback, skipping the scratch store/reload Neighbors() pays.
  template <typename Fn>
  void ForEachNeighbor(NodeId u, Cursor& cursor, Fn&& fn) const {
    const uint8_t* begin = bytes_ + offsets_[u];
    const uint8_t* end = bytes_ + offsets_[u + 1];
    if constexpr (D::kZeroCopy) {
      for (const NodeId v : D::View(begin, end)) fn(v);
    } else {
      cursor.decoded_bytes += static_cast<uint64_t>(end - begin);
      cursor.decoded_edges +=
          D::VisitEdgesTrusted(begin, end, std::forward<Fn>(fn));
    }
  }

  /// Decodes u's list block-at-a-time into cursor.scratch, invoking
  /// fn(span) per block until fn returns false or the list ends.
  template <typename Fn>
  void VisitBlocks(NodeId u, Cursor& cursor, Fn&& fn) const {
    const uint8_t* begin = bytes_ + offsets_[u];
    const uint8_t* end = bytes_ + offsets_[u + 1];
    if constexpr (D::kZeroCopy) {
      CONVPAIRS_CHECK(
          D::VisitBlocks(begin, end, cursor.scratch, std::forward<Fn>(fn)));
    } else {
      // decoded_bytes charges the whole record even when fn exits early —
      // block boundaries inside the byte stream aren't worth tracking.
      cursor.decoded_bytes += static_cast<uint64_t>(end - begin);
      D::VisitBlocksTrusted(
          begin, end, cursor.scratch, [&](std::span<const NodeId> block) {
            cursor.decoded_edges += block.size();
            return fn(block);
          });
    }
  }

  /// Per-edge pull with early exit: fn(v) until it returns false. The
  /// bottom-up sweeps' read shape — non-zero-copy codecs stop decoding the
  /// instant fn is satisfied, mid-block, so a settled hub costs one or two
  /// gap decodes instead of a full 64-edge block.
  template <typename Fn>
  void VisitNeighborsUntil(NodeId u, Cursor& cursor, Fn&& fn) const {
    const uint8_t* begin = bytes_ + offsets_[u];
    const uint8_t* end = bytes_ + offsets_[u + 1];
    if constexpr (D::kZeroCopy) {
      for (const NodeId v : D::View(begin, end)) {
        if (!fn(v)) return;
      }
    } else {
      // decoded_bytes still charges the whole record: byte boundaries of an
      // early exit inside the stream aren't worth tracking.
      cursor.decoded_bytes += static_cast<uint64_t>(end - begin);
      cursor.decoded_edges +=
          D::VisitEdgesUntilTrusted(begin, end, std::forward<Fn>(fn));
    }
  }

 private:
  NodeId num_nodes_;
  uint64_t num_directed_edges_;
  const uint32_t* offsets_;
  const uint8_t* bytes_;
};

using NopAdjacency = CompressedAdjacency<NopDecompressor>;
using VarintAdjacency = CompressedAdjacency<VarintDecompressor>;

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_CODEC_ADJACENCY_VIEW_H_
