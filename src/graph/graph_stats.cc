#include "graph/graph_stats.h"

#include <algorithm>
#include <vector>

#include "graph/connected_components.h"
#include "graph/types.h"
#include "util/parallel.h"

namespace convpairs {
namespace {

// Local BFS returning only the eccentricity of `src` (max finite distance).
// graph_stats sits below the sssp library in the layering, so it carries its
// own minimal traversal instead of depending upward.
Dist Eccentricity(const Graph& g, NodeId src, std::vector<Dist>& dist,
                  std::vector<NodeId>& queue) {
  dist.assign(g.num_nodes(), kInfDist);
  queue.clear();
  dist[src] = 0;
  queue.push_back(src);
  Dist ecc = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    NodeId u = queue[head];
    Dist du = dist[u];
    ecc = std::max(ecc, du);
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = du + 1;
        queue.push_back(v);
      }
    }
  }
  return ecc;
}

}  // namespace

double GraphDensity(const Graph& g) {
  double n = static_cast<double>(g.num_active_nodes());
  if (n < 2) return 0.0;
  return 2.0 * static_cast<double>(g.num_edges()) / (n * (n - 1.0));
}

uint32_t MaxDegree(const Graph& g) {
  uint32_t max_deg = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_deg = std::max(max_deg, g.degree(u));
  }
  return max_deg;
}

GraphStats ComputeGraphStats(const Graph& g, bool exact_diameter) {
  GraphStats stats;
  stats.num_nodes = g.num_active_nodes();
  stats.num_edges = g.num_edges();
  stats.max_degree = MaxDegree(g);
  stats.avg_degree =
      stats.num_nodes == 0
          ? 0.0
          : 2.0 * static_cast<double>(stats.num_edges) / stats.num_nodes;
  stats.density = GraphDensity(g);

  ConnectedComponents cc = ComputeConnectedComponents(g);
  // Components of isolated placeholder ids are artifacts of the shared
  // snapshot id space; count only components containing an active node.
  std::vector<bool> component_active(cc.num_components, false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.degree(u) > 0) component_active[cc.label[u]] = true;
  }
  uint32_t giant = 0;
  for (uint32_t c = 0; c < cc.num_components; ++c) {
    if (!component_active[c]) continue;
    ++stats.num_components;
    giant = std::max(giant, cc.size[c]);
  }
  stats.giant_component_size = giant;

  if (exact_diameter && stats.num_nodes > 0) {
    uint32_t giant_label = cc.GiantComponent();
    std::vector<NodeId> sources;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (cc.label[u] == giant_label && g.degree(u) > 0) sources.push_back(u);
    }
    std::vector<Dist> per_thread_max(
        static_cast<size_t>(MaxParallelWorkers(sources.size())), 0);
    ParallelForBlocks(
        sources.size(),
        [&](int thread_index, size_t begin, size_t end) {
          std::vector<Dist> dist;
          std::vector<NodeId> queue;
          Dist local = 0;
          for (size_t i = begin; i < end; ++i) {
            local = std::max(local, Eccentricity(g, sources[i], dist, queue));
          }
          // Workers may run several chunks: accumulate, don't assign.
          Dist& slot = per_thread_max[static_cast<size_t>(thread_index)];
          slot = std::max(slot, local);
        });
    stats.diameter =
        *std::max_element(per_thread_max.begin(), per_thread_max.end());
  }
  return stats;
}

}  // namespace convpairs
