#include "graph/validation.h"

#include <string>

#include "graph/temporal_graph.h"

namespace convpairs {

Status ValidateSnapshotPair(const Graph& g1, const Graph& g2) {
  if (g1.num_nodes() > g2.num_nodes()) {
    return Status::InvalidArgument(
        "G_t1 id space (" + std::to_string(g1.num_nodes()) +
        ") exceeds G_t2's (" + std::to_string(g2.num_nodes()) + ")");
  }
  for (NodeId u = 0; u < g1.num_nodes(); ++u) {
    for (NodeId v : g1.neighbors(u)) {
      if (u > v) continue;  // Each undirected edge checked once.
      if (!g2.HasEdge(u, v)) {
        return Status::InvalidArgument(
            "edge (" + std::to_string(u) + "," + std::to_string(v) +
            ") of G_t1 is missing from G_t2 (deletions need the "
            "DynamicGraphStream / diverging-pairs API)");
      }
    }
  }
  return Status::OK();
}

Status ValidateTemporalStream(const TemporalGraph& stream) {
  uint32_t last_time = 0;
  size_t index = 0;
  for (const TimedEdge& e : stream.events()) {
    if (e.u == e.v) {
      return Status::InvalidArgument("self-loop at event " +
                                     std::to_string(index));
    }
    if (e.time < last_time) {
      return Status::InvalidArgument("timestamps regress at event " +
                                     std::to_string(index));
    }
    last_time = e.time;
    ++index;
  }
  return Status::OK();
}

}  // namespace convpairs
