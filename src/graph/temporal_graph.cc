#include "graph/temporal_graph.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace convpairs {

TemporalGraph::TemporalGraph(std::vector<TimedEdge> edges)
    : edges_(std::move(edges)) {
  std::stable_sort(edges_.begin(), edges_.end(),
                   [](const TimedEdge& a, const TimedEdge& b) {
                     return a.time < b.time;
                   });
  for (const TimedEdge& e : edges_) {
    num_nodes_ = std::max(num_nodes_, std::max(e.u, e.v) + 1);
  }
}

void TemporalGraph::AddEdge(NodeId u, NodeId v, uint32_t time, float weight) {
  if (!edges_.empty()) CONVPAIRS_CHECK_GE(time, edges_.back().time);
  edges_.push_back({u, v, time, weight});
  num_nodes_ = std::max(num_nodes_, std::max(u, v) + 1);
}

uint32_t TemporalGraph::max_time() const {
  return edges_.empty() ? 0 : edges_.back().time;
}

Graph TemporalGraph::SnapshotAtTime(uint32_t time) const {
  std::vector<Edge> snapshot;
  snapshot.reserve(edges_.size());
  for (const TimedEdge& e : edges_) {
    if (e.time > time) break;
    snapshot.push_back({e.u, e.v, e.weight});
  }
  return Graph::FromEdges(num_nodes_, snapshot);
}

size_t TemporalGraph::PrefixCount(double fraction) const {
  CONVPAIRS_CHECK_GE(fraction, 0.0);
  CONVPAIRS_CHECK_LE(fraction, 1.0);
  return static_cast<size_t>(
      std::llround(fraction * static_cast<double>(edges_.size())));
}

Graph TemporalGraph::SnapshotAtFraction(double fraction) const {
  size_t count = PrefixCount(fraction);
  std::vector<Edge> snapshot;
  snapshot.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    snapshot.push_back({edges_[i].u, edges_[i].v, edges_[i].weight});
  }
  return Graph::FromEdges(num_nodes_, snapshot);
}

std::vector<Edge> TemporalGraph::EdgesInFractionRange(
    double from_fraction, double to_fraction) const {
  size_t from = PrefixCount(from_fraction);
  size_t to = PrefixCount(to_fraction);
  CONVPAIRS_CHECK_LE(from, to);
  std::vector<Edge> out;
  out.reserve(to - from);
  for (size_t i = from; i < to; ++i) {
    out.push_back({edges_[i].u, edges_[i].v, edges_[i].weight});
  }
  return out;
}

}  // namespace convpairs
