// Connected components of an undirected snapshot.
//
// The problem definition restricts converging pairs to nodes connected in
// G_t1 (disconnected pairs have infinite distance); component labels let the
// ground-truth engine and Table 2 statistics count disconnected pairs
// without touching distances.

#ifndef CONVPAIRS_GRAPH_CONNECTED_COMPONENTS_H_
#define CONVPAIRS_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace convpairs {

/// Component labeling of a graph. Labels are dense in [0, num_components).
struct ConnectedComponents {
  std::vector<uint32_t> label;        // per node
  std::vector<uint32_t> size;         // per component
  uint32_t num_components = 0;

  /// True if `u` and `v` are in the same component.
  bool Connected(NodeId u, NodeId v) const { return label[u] == label[v]; }

  /// Index of the largest component.
  uint32_t GiantComponent() const;

  /// Number of unordered node pairs that are NOT connected, counting only
  /// active (degree >= 1) nodes if `active_only`; isolated placeholder ids
  /// from the shared snapshot id space are excluded in that mode.
  uint64_t DisconnectedPairCount(const Graph& g, bool active_only = true) const;
};

/// Labels components with iterative BFS; O(n + m).
[[nodiscard]] ConnectedComponents ComputeConnectedComponents(const Graph& g);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_CONNECTED_COMPONENTS_H_
