// Edge-list file I/O (SNAP-style whitespace-separated format).
//
// Static format:    "u v [weight]" per line, '#' comments ignored.
// Temporal format:  "u v time [weight]" per line.

#ifndef CONVPAIRS_GRAPH_GRAPH_IO_H_
#define CONVPAIRS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace convpairs {

/// Reads a static edge list. Node ids must be non-negative integers; the id
/// space is [0, max_id + 1).
StatusOr<Graph> ReadEdgeList(const std::string& path);

/// Writes "u v" (or "u v weight" if weighted) per line.
Status WriteEdgeList(const Graph& g, const std::string& path);

/// Reads a temporal edge list ("u v time [weight]").
StatusOr<TemporalGraph> ReadTemporalEdgeList(const std::string& path);

/// Writes "u v time [weight]" per line in stream order.
Status WriteTemporalEdgeList(const TemporalGraph& g, const std::string& path);

/// Parses a static edge list from a string (used by tests and readers).
StatusOr<Graph> ParseEdgeList(const std::string& text);

/// Parses a temporal edge list from a string.
StatusOr<TemporalGraph> ParseTemporalEdgeList(const std::string& text);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_GRAPH_IO_H_
