// Validation of user-supplied snapshot pairs.
//
// The problem definition assumes G_t1 ⊆ G_t2 over a shared id space
// (insertions only). The CLI and any embedding application should validate
// external input before running the pipeline — violations would silently
// break the Delta >= 0 invariant the engines CHECK on.

#ifndef CONVPAIRS_GRAPH_VALIDATION_H_
#define CONVPAIRS_GRAPH_VALIDATION_H_

#include "graph/graph.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace convpairs {

/// Verifies that `g1` and `g2` form a valid evolving-snapshot pair:
/// same node-id space size is NOT required (g2 may have grown), but every
/// edge of g1 must be present in g2 and g1's id space must not exceed
/// g2's. Returns InvalidArgument naming the first offending edge.
Status ValidateSnapshotPair(const Graph& g1, const Graph& g2);

/// Verifies a temporal stream is sane: endpoints distinct, timestamps
/// nondecreasing (construction enforces this; re-checked for streams parsed
/// from external files).
Status ValidateTemporalStream(const TemporalGraph& stream);

}  // namespace convpairs

#endif  // CONVPAIRS_GRAPH_VALIDATION_H_
