#include "graph/graph_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace convpairs {
namespace {

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot open: " + path);
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

Status ParseUint(std::string_view token, uint64_t* out) {
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("bad integer token: " + std::string(token));
  }
  return Status::OK();
}

Status ParseFloat(std::string_view token, float* out) {
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("bad float token: " + std::string(token));
  }
  return Status::OK();
}

// Parses lines of `min_fields`..`max_fields` integers/floats; invokes
// `emit(fields)` per data line.
template <typename Emit>
Status ParseLines(const std::string& text, size_t min_fields,
                  size_t max_fields, Emit emit) {
  size_t line_no = 0;
  for (std::string_view line : Split(text, '\n')) {
    ++line_no;
    line = Strip(line);
    if (line.empty() || line.front() == '#' || line.front() == '%') continue;
    auto fields = SplitWhitespace(line);
    if (fields.size() < min_fields || fields.size() > max_fields) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected " +
                                     std::to_string(min_fields) + ".." +
                                     std::to_string(max_fields) + " fields");
    }
    CONVPAIRS_RETURN_IF_ERROR(emit(fields));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Graph> ParseEdgeList(const std::string& text) {
  std::vector<Edge> edges;
  NodeId num_nodes = 0;
  Status status = ParseLines(
      text, 2, 3, [&](const std::vector<std::string_view>& f) -> Status {
        uint64_t u = 0;
        uint64_t v = 0;
        CONVPAIRS_RETURN_IF_ERROR(ParseUint(f[0], &u));
        CONVPAIRS_RETURN_IF_ERROR(ParseUint(f[1], &v));
        float w = 1.0f;
        if (f.size() == 3) CONVPAIRS_RETURN_IF_ERROR(ParseFloat(f[2], &w));
        if (u > UINT32_MAX - 1 || v > UINT32_MAX - 1) {
          return Status::OutOfRange("node id too large");
        }
        edges.push_back(
            {static_cast<NodeId>(u), static_cast<NodeId>(v), w});
        num_nodes = std::max(
            num_nodes, static_cast<NodeId>(std::max(u, v) + 1));
        return Status::OK();
      });
  if (!status.ok()) return status;
  return Graph::FromEdges(num_nodes, edges);
}

StatusOr<TemporalGraph> ParseTemporalEdgeList(const std::string& text) {
  std::vector<TimedEdge> edges;
  Status status = ParseLines(
      text, 3, 4, [&](const std::vector<std::string_view>& f) -> Status {
        uint64_t u = 0;
        uint64_t v = 0;
        uint64_t t = 0;
        CONVPAIRS_RETURN_IF_ERROR(ParseUint(f[0], &u));
        CONVPAIRS_RETURN_IF_ERROR(ParseUint(f[1], &v));
        CONVPAIRS_RETURN_IF_ERROR(ParseUint(f[2], &t));
        float w = 1.0f;
        if (f.size() == 4) CONVPAIRS_RETURN_IF_ERROR(ParseFloat(f[3], &w));
        if (u > UINT32_MAX - 1 || v > UINT32_MAX - 1 || t > UINT32_MAX) {
          return Status::OutOfRange("id or time too large");
        }
        edges.push_back({static_cast<NodeId>(u), static_cast<NodeId>(v),
                         static_cast<uint32_t>(t), w});
        return Status::OK();
      });
  if (!status.ok()) return status;
  return TemporalGraph(std::move(edges));
}

StatusOr<Graph> ReadEdgeList(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseEdgeList(*text);
}

StatusOr<TemporalGraph> ReadTemporalEdgeList(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseTemporalEdgeList(*text);
}

Status WriteEdgeList(const Graph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  for (const Edge& e : g.ToEdgeList()) {
    file << e.u << ' ' << e.v;
    if (g.is_weighted()) file << ' ' << e.weight;
    file << '\n';
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteTemporalEdgeList(const TemporalGraph& g, const std::string& path) {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  for (const TimedEdge& e : g.events()) {
    file << e.u << ' ' << e.v << ' ' << e.time;
    if (e.weight != 1.0f) file << ' ' << e.weight;
    file << '\n';
  }
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace convpairs
