#include "graph/graph.h"

#include <algorithm>

#include "util/check.h"

namespace convpairs {

Graph::Graph(NodeId num_nodes)
    : num_nodes_(num_nodes), offsets_(num_nodes + 1, 0) {}

Graph Graph::FromEdges(NodeId num_nodes, std::span<const Edge> edges) {
  // Normalize to directed half-edges (both directions), dropping self-loops.
  struct HalfEdge {
    NodeId from;
    NodeId to;
    float weight;
  };
  std::vector<HalfEdge> half;
  half.reserve(edges.size() * 2);
  for (const Edge& e : edges) {
    CONVPAIRS_CHECK_LT(e.u, num_nodes);
    CONVPAIRS_CHECK_LT(e.v, num_nodes);
    if (e.u == e.v) continue;
    half.push_back({e.u, e.v, e.weight});
    half.push_back({e.v, e.u, e.weight});
  }
  std::sort(half.begin(), half.end(), [](const HalfEdge& a, const HalfEdge& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.weight < b.weight;
  });
  // Dedup parallel edges, keeping the smallest weight (first after sort).
  half.erase(std::unique(half.begin(), half.end(),
                         [](const HalfEdge& a, const HalfEdge& b) {
                           return a.from == b.from && a.to == b.to;
                         }),
             half.end());

  Graph g(num_nodes);
  g.adjacency_.resize(half.size());
  g.weights_.resize(half.size());
  for (const HalfEdge& he : half) g.offsets_[he.from + 1]++;
  for (NodeId u = 0; u < num_nodes; ++u) g.offsets_[u + 1] += g.offsets_[u];
  // Half-edges are sorted by `from`, so a simple sequential fill preserves
  // sorted neighbor order.
  size_t idx = 0;
  for (const HalfEdge& he : half) {
    g.adjacency_[idx] = he.to;
    g.weights_[idx] = he.weight;
    if (he.weight != 1.0f) g.is_weighted_ = true;
    ++idx;
  }
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (g.degree(u) > 0) ++g.num_active_nodes_;
  }
  return g;
}

Graph Graph::FromCsr(NodeId num_nodes, std::vector<size_t> offsets,
                     std::vector<NodeId> adjacency) {
  CONVPAIRS_CHECK_EQ(offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CONVPAIRS_CHECK_EQ(offsets.front(), 0u);
  CONVPAIRS_CHECK_EQ(offsets.back(), adjacency.size());
  Graph g(num_nodes);
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.weights_.assign(g.adjacency_.size(), 1.0f);
  for (NodeId u = 0; u < num_nodes; ++u) {
    if (g.degree(u) > 0) ++g.num_active_nodes_;
  }
  return g;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::ToEdgeList() const {
  std::vector<Edge> out;
  out.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto nbrs = neighbors(u);
    auto wts = weights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) out.push_back({u, nbrs[i], wts[i]});
    }
  }
  return out;
}

}  // namespace convpairs
