#include "graph/dynamic_stream.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace convpairs {
namespace {

uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

}  // namespace

DynamicGraphStream::DynamicGraphStream(const TemporalGraph& inserts) {
  for (const TimedEdge& e : inserts.events()) {
    AddEdge(e.u, e.v, e.time, e.weight);
  }
}

void DynamicGraphStream::AddEdge(NodeId u, NodeId v, uint32_t time,
                                 float weight) {
  CONVPAIRS_CHECK_NE(u, v);
  if (!events_.empty()) CONVPAIRS_CHECK_GE(time, events_.back().time);
  events_.push_back({u, v, time, EdgeOp::kInsert, weight});
  num_nodes_ = std::max(num_nodes_, std::max(u, v) + 1);
  ++live_counts_[EdgeKey(u, v)];
}

void DynamicGraphStream::RemoveEdge(NodeId u, NodeId v, uint32_t time) {
  CONVPAIRS_CHECK_NE(u, v);
  if (!events_.empty()) CONVPAIRS_CHECK_GE(time, events_.back().time);
  auto it = live_counts_.find(EdgeKey(u, v));
  CONVPAIRS_CHECK(it != live_counts_.end() && it->second > 0);
  --it->second;
  events_.push_back({u, v, time, EdgeOp::kDelete, 1.0f});
}

Graph DynamicGraphStream::SnapshotOfPrefix(size_t event_count) const {
  // Live multiplicity after the prefix; an edge is present while its
  // insert count exceeds its delete count.
  std::unordered_map<uint64_t, int> live;
  std::unordered_map<uint64_t, float> weight;
  live.reserve(event_count);
  for (size_t i = 0; i < event_count; ++i) {
    const EdgeEvent& e = events_[i];
    uint64_t key = EdgeKey(e.u, e.v);
    if (e.op == EdgeOp::kInsert) {
      ++live[key];
      weight[key] = e.weight;
    } else {
      auto it = live.find(key);
      CONVPAIRS_CHECK(it != live.end() && it->second > 0);
      --it->second;
    }
  }
  std::vector<Edge> edges;
  edges.reserve(live.size());
  for (const auto& [key, count] : live) {
    if (count <= 0) continue;
    edges.push_back({static_cast<NodeId>(key >> 32),
                     static_cast<NodeId>(key & 0xFFFFFFFFu), weight[key]});
  }
  return Graph::FromEdges(num_nodes_, edges);
}

Graph DynamicGraphStream::SnapshotAtTime(uint32_t time) const {
  size_t count = 0;
  while (count < events_.size() && events_[count].time <= time) ++count;
  return SnapshotOfPrefix(count);
}

Graph DynamicGraphStream::SnapshotAtFraction(double fraction) const {
  CONVPAIRS_CHECK_GE(fraction, 0.0);
  CONVPAIRS_CHECK_LE(fraction, 1.0);
  return SnapshotOfPrefix(static_cast<size_t>(
      std::llround(fraction * static_cast<double>(events_.size()))));
}

}  // namespace convpairs
