// Forest Fire evolving-graph generator (Leskovec et al.) — the graph-
// generation-model line of work the paper cites for dynamic social network
// analysis. Produces densifying graphs with shrinking effective diameter
// and community structure; used as a fifth structural regime in the
// property tests and generator ablations.
//
// Undirected simplification: an arriving node picks a random ambassador,
// links to it, then recursively "burns" a geometrically distributed number
// of the ambassador's neighbors, linking to every burned node.

#ifndef CONVPAIRS_GEN_FOREST_FIRE_H_
#define CONVPAIRS_GEN_FOREST_FIRE_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct ForestFireParams {
  uint32_t num_nodes = 1000;
  /// Forward burning probability p in (0,1): each burn step spreads to a
  /// Geometric(1-p)-distributed number of unburned neighbors (mean
  /// p/(1-p)). Higher p -> denser, more clustered graphs.
  double burn_probability = 0.35;
  /// Cap on nodes burned per arrival (guards the p -> 1 blowup).
  uint32_t max_burned_per_arrival = 64;
};

/// Generates the stream; time = edge insertion index.
TemporalGraph GenerateForestFire(const ForestFireParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_FOREST_FIRE_H_
