#include "gen/er_generator.h"

#include <unordered_set>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateErdosRenyi(const ErParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.num_nodes, 2u);
  uint64_t n = params.num_nodes;
  uint64_t max_edges = n * (n - 1) / 2;
  CONVPAIRS_CHECK_LE(params.num_edges, max_edges);

  std::unordered_set<uint64_t> seen;
  seen.reserve(params.num_edges * 2);
  TemporalGraph g;
  uint32_t time = 0;
  while (seen.size() < params.num_edges) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
    if (!seen.insert(key).second) continue;
    g.AddEdge(u, v, time++);
  }
  return g;
}

}  // namespace convpairs
