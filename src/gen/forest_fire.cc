#include "gen/forest_fire.h"

#include <unordered_set>
#include <vector>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateForestFire(const ForestFireParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.num_nodes, 2u);
  CONVPAIRS_CHECK_GT(params.burn_probability, 0.0);
  CONVPAIRS_CHECK_LT(params.burn_probability, 1.0);

  TemporalGraph g;
  uint32_t time = 0;
  std::vector<std::vector<NodeId>> adjacency(params.num_nodes);

  auto add_edge = [&](NodeId u, NodeId v) {
    g.AddEdge(u, v, time++);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  };

  add_edge(0, 1);
  for (NodeId v = 2; v < params.num_nodes; ++v) {
    NodeId ambassador = static_cast<NodeId>(rng.UniformInt(v));
    std::unordered_set<NodeId> burned = {v, ambassador};
    std::vector<NodeId> frontier = {ambassador};
    add_edge(v, ambassador);
    uint32_t total_burned = 1;

    while (!frontier.empty() &&
           total_burned < params.max_burned_per_arrival) {
      NodeId current = frontier.back();
      frontier.pop_back();
      // Geometric number of spreads: keep burning neighbors while a
      // p-biased coin comes up heads.
      std::vector<NodeId> candidates;
      for (NodeId nbr : adjacency[current]) {
        if (burned.count(nbr) == 0) candidates.push_back(nbr);
      }
      rng.Shuffle(candidates);
      for (NodeId nbr : candidates) {
        if (!rng.Bernoulli(params.burn_probability)) break;
        if (total_burned >= params.max_burned_per_arrival) break;
        burned.insert(nbr);
        add_edge(v, nbr);
        frontier.push_back(nbr);
        ++total_burned;
      }
    }
  }
  return g;
}

}  // namespace convpairs
