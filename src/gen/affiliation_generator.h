// Affiliation (team/clique) evolving-graph generator.
//
// Collaboration networks — the paper's Actors (movie casts) and DBLP
// (paper author lists) datasets — are projections of an affiliation
// structure: each event (movie, paper) forms a clique among its team.
// Dense casts with heavy member reuse reproduce the Actors regime (dense,
// tiny diameter, converging paths collapsing to one or two hops); small
// teams with a high new-member rate reproduce the DBLP regime (sparse,
// large diameter, many disconnected components).

#ifndef CONVPAIRS_GEN_AFFILIATION_GENERATOR_H_
#define CONVPAIRS_GEN_AFFILIATION_GENERATOR_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct AffiliationParams {
  /// Number of team events (movies / papers).
  uint32_t num_events = 1000;
  /// Team size is uniform in [min_team_size, max_team_size].
  uint32_t min_team_size = 2;
  uint32_t max_team_size = 4;
  /// Probability a team slot is filled by a brand-new node.
  double new_member_prob = 0.5;
  /// For returning members: probability of participation-proportional
  /// (rich-get-richer) selection instead of uniform over existing nodes.
  double preferential_prob = 0.7;
};

/// Generates the clique-projection stream; all edges of one event share a
/// timestamp (the event index).
TemporalGraph GenerateAffiliation(const AffiliationParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_AFFILIATION_GENERATOR_H_
