// Preferential-attachment (Barabási–Albert style) evolving-graph generator.
//
// Used for the "internet" analog: heavy-tailed degree distribution with a
// hub core and a large periphery, the regime where the paper's AS-level
// Internet-links dataset lives. A uniform-attachment mixture keeps some
// attachment mass on peripheral nodes so that late edges occasionally
// shortcut long peripheral paths — the source of large-Delta converging
// pairs in such topologies.

#ifndef CONVPAIRS_GEN_BA_GENERATOR_H_
#define CONVPAIRS_GEN_BA_GENERATOR_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct BaParams {
  /// Total nodes (including the seed clique).
  uint32_t num_nodes = 1000;
  /// Edges added per arriving node.
  uint32_t edges_per_node = 2;
  /// Size of the initial clique.
  uint32_t seed_nodes = 4;
  /// Probability an attachment target is drawn uniformly instead of
  /// preferentially (0 = pure BA).
  double uniform_mix = 0.0;
  /// Extra edges between existing nodes appended after each arrival with
  /// this probability (densification; one endpoint preferential, one
  /// uniform).
  double densification_prob = 0.0;
};

/// Generates a timestamped edge stream; time = insertion index.
TemporalGraph GenerateBarabasiAlbert(const BaParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_BA_GENERATOR_H_
