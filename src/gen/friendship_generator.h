// Friendship-network evolving-graph generator (Facebook analog).
//
// Nodes arrive over time; each arrival links to an existing node, and the
// stream is interleaved with triadic-closure edges (friend-of-friend, the
// dominant edge-creation process in online social networks) and occasional
// uniform long links. Sequential timestamps, one per edge, match the
// paper's Facebook dataset where all 31,498 connections carry distinct
// creation times.

#ifndef CONVPAIRS_GEN_FRIENDSHIP_GENERATOR_H_
#define CONVPAIRS_GEN_FRIENDSHIP_GENERATOR_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct FriendshipParams {
  uint32_t num_nodes = 1000;
  /// Total edges in the stream (>= num_nodes so the arrival links fit).
  uint64_t num_edges = 7000;
  /// Among non-arrival edges: probability of closing a triangle
  /// (u, neighbor-of-neighbor); the complement picks one preferential and
  /// one uniform endpoint (long link).
  double triadic_closure_prob = 0.7;
};

/// Generates the sequential friendship stream; time = insertion index.
TemporalGraph GenerateFriendship(const FriendshipParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_FRIENDSHIP_GENERATOR_H_
