#include "gen/ba_generator.h"

#include <vector>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateBarabasiAlbert(const BaParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.seed_nodes, 2u);
  CONVPAIRS_CHECK_GE(params.num_nodes, params.seed_nodes);
  CONVPAIRS_CHECK_GE(params.edges_per_node, 1u);

  TemporalGraph g;
  uint32_t time = 0;
  // Every half-edge endpoint goes into this pool; uniform sampling from it
  // is degree-proportional (preferential) sampling.
  std::vector<NodeId> endpoint_pool;

  auto add_edge = [&](NodeId u, NodeId v) {
    g.AddEdge(u, v, time++);
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
  };
  auto preferential = [&]() -> NodeId {
    return endpoint_pool[rng.UniformInt(endpoint_pool.size())];
  };

  // Seed clique.
  for (NodeId u = 0; u < params.seed_nodes; ++u) {
    for (NodeId v = u + 1; v < params.seed_nodes; ++v) add_edge(u, v);
  }

  for (NodeId u = params.seed_nodes; u < params.num_nodes; ++u) {
    for (uint32_t e = 0; e < params.edges_per_node; ++e) {
      NodeId target;
      // Retry duplicate / self targets a few times, then accept (snapshot
      // construction deduplicates; a rare duplicate only wastes one event).
      int attempts = 0;
      do {
        target = rng.Bernoulli(params.uniform_mix)
                     ? static_cast<NodeId>(rng.UniformInt(u))
                     : preferential();
      } while (target == u && ++attempts < 8);
      if (target == u) target = static_cast<NodeId>(u == 0 ? 1 : u - 1);
      add_edge(u, target);
    }
    if (rng.Bernoulli(params.densification_prob)) {
      NodeId a = preferential();
      NodeId b = static_cast<NodeId>(rng.UniformInt(u + 1));
      if (a != b) add_edge(a, b);
    }
  }
  return g;
}

}  // namespace convpairs
