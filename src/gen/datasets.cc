#include "gen/datasets.h"

#include <cmath>

#include "gen/affiliation_generator.h"
#include "gen/ba_generator.h"
#include "gen/friendship_generator.h"
#include "util/rng.h"

namespace convpairs {
namespace {

uint32_t Scaled(uint32_t base, double scale) {
  double value = std::llround(static_cast<double>(base) * scale);
  return value < 2 ? 2u : static_cast<uint32_t>(value);
}

// Seeds are offset per dataset so "same seed, different dataset" still draws
// independent streams.
uint64_t DatasetSeed(uint64_t seed, uint64_t salt) {
  return seed * 0x9E3779B97F4A7C15ULL + salt;
}

TemporalGraph GenerateActors(double scale, uint64_t seed) {
  // Dense movie-cast cliques with heavy actor reuse: small n, m >> n,
  // diameter of a few hops (paper: 1.8k nodes, 45-56k edges).
  Rng rng(DatasetSeed(seed, 1));
  AffiliationParams params;
  params.num_events = Scaled(300, scale);
  params.min_team_size = 8;
  params.max_team_size = 22;
  params.new_member_prob = 0.30;
  params.preferential_prob = 0.55;
  return GenerateAffiliation(params, rng);
}

TemporalGraph GenerateInternet(double scale, uint64_t seed) {
  // AS-like: heavy-tailed hub core, large sparse periphery
  // (paper: 21.8k nodes, 84-104k edges). The uniform mix keeps attachment
  // mass on the periphery so late edges create large distance drops.
  // Arrivals are provider links (preferential, like a new stub AS buying
  // transit); peerings between existing ASes arrive via densification with
  // one peripheral endpoint — the concentrated source of large distance
  // drops, matching the real AS graph where a stub's new peering collapses
  // all of its pair distances at once.
  // One provider link per arriving AS keeps a genuine stub periphery (the
  // concentration the real AS graph shows: a stub's new peering collapses
  // all of that stub's pair distances, so few nodes cover many pairs).
  Rng rng(DatasetSeed(seed, 2));
  BaParams params;
  params.num_nodes = Scaled(9000, scale);
  params.edges_per_node = 1;
  params.seed_nodes = 4;
  params.uniform_mix = 0.10;
  params.densification_prob = 0.6;
  return GenerateBarabasiAlbert(params, rng);
}

TemporalGraph GenerateFacebook(double scale, uint64_t seed) {
  // Sequentially timestamped friendships, triadic closure dominated
  // (paper: 4.4k nodes, 25-31k edges).
  Rng rng(DatasetSeed(seed, 3));
  FriendshipParams params;
  params.num_nodes = Scaled(4400, scale);
  params.num_edges = Scaled(31500, scale);
  params.triadic_closure_prob = 0.72;
  return GenerateFriendship(params, rng);
}

TemporalGraph GenerateDblp(double scale, uint64_t seed) {
  // Small author-list cliques, high new-author rate: sparse, large
  // diameter, many components (paper: 15-18k nodes, 39-49k edges, a large
  // disconnected-pair count).
  // The real DBLP snapshot is dominated by one giant component with a thin
  // disconnected fringe; a moderate new-author rate with mild preferential
  // reuse reproduces that while keeping the diameter large.
  Rng rng(DatasetSeed(seed, 4));
  AffiliationParams params;
  params.num_events = Scaled(5000, scale);
  params.min_team_size = 2;
  params.max_team_size = 3;
  params.new_member_prob = 0.32;
  params.preferential_prob = 0.25;
  return GenerateAffiliation(params, rng);
}

}  // namespace

const std::vector<std::string>& DatasetNames() {
  static const std::vector<std::string> names = {"actors", "internet",
                                                 "facebook", "dblp"};
  return names;
}

Dataset MakeDatasetFromTemporal(std::string name, TemporalGraph temporal) {
  Dataset dataset;
  dataset.name = std::move(name);
  dataset.g1 = temporal.SnapshotAtFraction(kTestG1Fraction);
  dataset.g2 = temporal.SnapshotAtFraction(kTestG2Fraction);
  dataset.train_g1 = temporal.SnapshotAtFraction(kTrainG1Fraction);
  dataset.train_g2 = temporal.SnapshotAtFraction(kTrainG2Fraction);
  dataset.temporal = std::move(temporal);
  return dataset;
}

StatusOr<Dataset> MakeDataset(const std::string& name, double scale,
                              uint64_t seed) {
  if (scale <= 0.0) return Status::InvalidArgument("scale must be positive");
  TemporalGraph temporal;
  if (name == "actors") {
    temporal = GenerateActors(scale, seed);
  } else if (name == "internet") {
    temporal = GenerateInternet(scale, seed);
  } else if (name == "facebook") {
    temporal = GenerateFacebook(scale, seed);
  } else if (name == "dblp") {
    temporal = GenerateDblp(scale, seed);
  } else {
    return Status::InvalidArgument("unknown dataset: " + name);
  }
  return MakeDatasetFromTemporal(name, std::move(temporal));
}

}  // namespace convpairs
