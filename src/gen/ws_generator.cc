#include "gen/ws_generator.h"

#include <vector>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateWattsStrogatz(const WsParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.num_nodes, 4u);
  CONVPAIRS_CHECK_EQ(params.k % 2, 0u);
  CONVPAIRS_CHECK_GE(params.k, 2u);
  CONVPAIRS_CHECK_LT(params.k, params.num_nodes);

  const NodeId n = params.num_nodes;
  std::vector<Edge> lattice;
  std::vector<Edge> long_links;
  for (NodeId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= params.k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % n);
      if (rng.Bernoulli(params.beta)) {
        // Rewire: replace with a uniform random long link from u.
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.UniformInt(n));
        } while (w == u);
        long_links.push_back({u, w, 1.0f});
      } else {
        lattice.push_back({u, v, 1.0f});
      }
    }
  }
  rng.Shuffle(lattice);
  rng.Shuffle(long_links);

  TemporalGraph g;
  uint32_t time = 0;
  for (const Edge& e : lattice) g.AddEdge(e.u, e.v, time++);
  for (const Edge& e : long_links) g.AddEdge(e.u, e.v, time++);
  return g;
}

}  // namespace convpairs
