// Erdős–Rényi G(n, M) evolving-graph generator (random edge arrival order).
//
// Mainly a test/ablation substrate: no degree skew, no locality — the
// structural null model against which the selection policies are compared.

#ifndef CONVPAIRS_GEN_ER_GENERATOR_H_
#define CONVPAIRS_GEN_ER_GENERATOR_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct ErParams {
  uint32_t num_nodes = 1000;
  /// Number of distinct edges to draw (without replacement).
  uint64_t num_edges = 3000;
};

/// Generates distinct uniform random edges in a uniformly random arrival
/// order; time = insertion index.
TemporalGraph GenerateErdosRenyi(const ErParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_ER_GENERATOR_H_
