// Watts–Strogatz small-world evolving-graph generator.
//
// High-diameter ring lattice whose rewired long links arrive LATE in the
// stream: an adversarially convergence-heavy workload (each late long link
// collapses many long lattice distances at once), used by property tests and
// ablations to stress large-Delta regimes.

#ifndef CONVPAIRS_GEN_WS_GENERATOR_H_
#define CONVPAIRS_GEN_WS_GENERATOR_H_

#include "graph/temporal_graph.h"
#include "util/rng.h"

namespace convpairs {

struct WsParams {
  uint32_t num_nodes = 1000;
  /// Each node is connected to its k nearest ring neighbors (k even).
  uint32_t k = 4;
  /// Fraction of lattice edges replaced by uniform random long links.
  double beta = 0.05;
};

/// Generates the lattice edges first (random order), then the rewired long
/// links, so a fraction-based snapshot split puts long links in the "new
/// edges" part.
TemporalGraph GenerateWattsStrogatz(const WsParams& params, Rng& rng);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_WS_GENERATOR_H_
