#include "gen/friendship_generator.h"

#include <vector>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateFriendship(const FriendshipParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.num_nodes, 2u);
  CONVPAIRS_CHECK_GE(params.num_edges, params.num_nodes);

  TemporalGraph g;
  uint32_t time = 0;
  std::vector<NodeId> endpoint_pool;              // degree-proportional pool
  std::vector<std::vector<NodeId>> adjacency(params.num_nodes);

  auto add_edge = [&](NodeId u, NodeId v) {
    g.AddEdge(u, v, time++);
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
  };
  auto preferential = [&]() -> NodeId {
    return endpoint_pool[rng.UniformInt(endpoint_pool.size())];
  };

  // Interleave node arrivals with closure/long-link edges so densification
  // happens throughout the stream rather than all at the end.
  uint64_t extra_edges = params.num_edges - (params.num_nodes - 1);
  double extras_per_arrival =
      static_cast<double>(extra_edges) / (params.num_nodes - 1);
  double extras_owed = 0.0;

  add_edge(0, 1);  // Bootstrap.
  for (NodeId u = 2; u < params.num_nodes; ++u) {
    add_edge(u, preferential());  // Arrival link.
    extras_owed += extras_per_arrival;
    while (extras_owed >= 1.0 && time < params.num_edges) {
      extras_owed -= 1.0;
      if (rng.Bernoulli(params.triadic_closure_prob)) {
        // Triadic closure: pick a node with at least one 2-hop contact.
        NodeId a = preferential();
        const auto& a_nbrs = adjacency[a];
        NodeId b = a_nbrs[rng.UniformInt(a_nbrs.size())];
        const auto& b_nbrs = adjacency[b];
        NodeId c = b_nbrs[rng.UniformInt(b_nbrs.size())];
        if (c != a) add_edge(a, c);
      } else {
        NodeId a = preferential();
        NodeId b = static_cast<NodeId>(rng.UniformInt(u + 1));
        if (a != b) add_edge(a, b);
      }
    }
  }
  // Top up to the exact edge budget with closure edges.
  while (time < params.num_edges) {
    NodeId a = preferential();
    const auto& a_nbrs = adjacency[a];
    NodeId b = a_nbrs[rng.UniformInt(a_nbrs.size())];
    const auto& b_nbrs = adjacency[b];
    NodeId c = b_nbrs[rng.UniformInt(b_nbrs.size())];
    if (c != a) add_edge(a, c);
  }
  return g;
}

}  // namespace convpairs
