// Named synthetic analogs of the paper's four evaluation datasets.
//
// The paper evaluates on IMDB Actors, AS-level Internet links, Facebook
// friendships and DBLP co-authorships (Table 2). Those exact snapshots are
// not redistributable, so each is replaced by a generator configuration that
// matches the structural axes the selection policies are sensitive to:
// density, degree skew, community/clique structure, diameter regime and the
// fraction of disconnected pairs. See DESIGN.md §3-§4 for the substitution
// rationale.
//
// Snapshot protocol (paper §5.1): the evaluated instance pairs
// G_t1 = first 80% of the edge stream, G_t2 = the full stream. Classifier
// training uses the earlier pair 40% / 60% of the same evolution.

#ifndef CONVPAIRS_GEN_DATASETS_H_
#define CONVPAIRS_GEN_DATASETS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/temporal_graph.h"
#include "util/status.h"

namespace convpairs {

/// A generated evolving graph with the paper's snapshot splits materialized.
struct Dataset {
  std::string name;
  TemporalGraph temporal;
  Graph g1;        // test split, 80% of edges
  Graph g2;        // test split, 100% of edges
  Graph train_g1;  // classifier-training split, 40%
  Graph train_g2;  // classifier-training split, 60%
};

/// Snapshot fractions used throughout the reproduction.
inline constexpr double kTestG1Fraction = 0.8;
inline constexpr double kTestG2Fraction = 1.0;
inline constexpr double kTrainG1Fraction = 0.4;
inline constexpr double kTrainG2Fraction = 0.6;

/// The four dataset analogs, in the paper's order.
const std::vector<std::string>& DatasetNames();

/// Builds the named dataset. `scale` multiplies the node/event budget
/// (1.0 = the single-core default documented in DESIGN.md); `seed` fixes
/// the generator stream. Unknown names return InvalidArgument.
StatusOr<Dataset> MakeDataset(const std::string& name, double scale = 1.0,
                              uint64_t seed = 0);

/// Builds a Dataset (with all four snapshot splits) from an arbitrary
/// temporal stream — entry point for user-supplied data.
Dataset MakeDatasetFromTemporal(std::string name, TemporalGraph temporal);

}  // namespace convpairs

#endif  // CONVPAIRS_GEN_DATASETS_H_
