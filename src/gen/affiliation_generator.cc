#include "gen/affiliation_generator.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace convpairs {

TemporalGraph GenerateAffiliation(const AffiliationParams& params, Rng& rng) {
  CONVPAIRS_CHECK_GE(params.min_team_size, 2u);
  CONVPAIRS_CHECK_GE(params.max_team_size, params.min_team_size);
  CONVPAIRS_CHECK_GT(params.num_events, 0u);

  TemporalGraph g;
  NodeId next_node = 0;
  // Participation pool: one entry per (node, event) participation; uniform
  // sampling from it is participation-proportional.
  std::vector<NodeId> participation_pool;

  std::vector<NodeId> team;
  for (uint32_t event = 0; event < params.num_events; ++event) {
    uint32_t team_size = static_cast<uint32_t>(rng.UniformRange(
        params.min_team_size, params.max_team_size));
    team.clear();
    for (uint32_t slot = 0; slot < team_size; ++slot) {
      NodeId member;
      if (next_node == 0 || rng.Bernoulli(params.new_member_prob)) {
        member = next_node++;
      } else if (!participation_pool.empty() &&
                 rng.Bernoulli(params.preferential_prob)) {
        member =
            participation_pool[rng.UniformInt(participation_pool.size())];
      } else {
        member = static_cast<NodeId>(rng.UniformInt(next_node));
      }
      // Avoid duplicate members within one team; fall back to a fresh node
      // if we keep colliding (only matters for tiny node counts).
      if (std::find(team.begin(), team.end(), member) != team.end()) {
        member = next_node++;
      }
      team.push_back(member);
    }
    for (size_t i = 0; i < team.size(); ++i) {
      for (size_t j = i + 1; j < team.size(); ++j) {
        g.AddEdge(team[i], team[j], event);
      }
      participation_pool.push_back(team[i]);
    }
  }
  return g;
}

}  // namespace convpairs
