// ASCII table printer used by the benchmark harness to render the paper's
// tables and figure series in a diff-friendly, aligned format.

#ifndef CONVPAIRS_UTIL_TABLE_H_
#define CONVPAIRS_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace convpairs {

/// Column-aligned table with a header row. Cells are strings; numeric
/// convenience overloads are provided on AddCell.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Starts a new row. Cells are appended with AddCell.
  void StartRow();

  void AddCell(std::string value);
  void AddCell(const char* value);
  void AddCell(int64_t value);
  void AddCell(uint64_t value);
  void AddCell(int value);
  void AddCell(unsigned value);
  /// Formats with `decimals` fractional digits.
  void AddCell(double value, int decimals = 2);

  /// Appends a full row at once.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `out`.
  void Print(std::ostream& out) const;

  /// Renders to a string.
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_TABLE_H_
