// Invariant-checking macros.
//
// CHECK-style assertions abort the process on violation; they guard internal
// invariants that indicate programmer error, not recoverable conditions.
// Recoverable failures (I/O, malformed input) use util::Status instead.

#ifndef CONVPAIRS_UTIL_CHECK_H_
#define CONVPAIRS_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace convpairs::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace convpairs::internal

/// Aborts with a diagnostic if `expr` is false. Always evaluated, including
/// in release builds: the algorithms here are cheap relative to graph scans,
/// and silent invariant violations would corrupt experiment results.
#define CONVPAIRS_CHECK(expr)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::convpairs::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                                \
  } while (0)

#define CONVPAIRS_CHECK_EQ(a, b) CONVPAIRS_CHECK((a) == (b))
#define CONVPAIRS_CHECK_NE(a, b) CONVPAIRS_CHECK((a) != (b))
#define CONVPAIRS_CHECK_LT(a, b) CONVPAIRS_CHECK((a) < (b))
#define CONVPAIRS_CHECK_LE(a, b) CONVPAIRS_CHECK((a) <= (b))
#define CONVPAIRS_CHECK_GT(a, b) CONVPAIRS_CHECK((a) > (b))
#define CONVPAIRS_CHECK_GE(a, b) CONVPAIRS_CHECK((a) >= (b))

#endif  // CONVPAIRS_UTIL_CHECK_H_
