#include "util/rng.h"

namespace convpairs {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  CONVPAIRS_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  CONVPAIRS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  return lo + static_cast<int64_t>(UniformInt(span));
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t population,
                                                    uint32_t count) {
  CONVPAIRS_CHECK_LE(count, population);
  std::vector<uint32_t> pool(population);
  for (uint32_t i = 0; i < population; ++i) pool[i] = i;
  // Partial Fisher-Yates: the first `count` slots become the sample.
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t j =
        i + static_cast<uint32_t>(UniformInt(population - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL); }

}  // namespace convpairs
