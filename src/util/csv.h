// CSV emission for experiment results, so paper figures can be re-plotted
// from the benchmark output.

#ifndef CONVPAIRS_UTIL_CSV_H_
#define CONVPAIRS_UTIL_CSV_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace convpairs {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields that
/// contain separators or quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  /// Appends one row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  /// Serializes to a CSV string (header first).
  std::string ToString() const;

  /// Writes the CSV to `path`.
  Status WriteToFile(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_CSV_H_
