// Graceful-shutdown signal watching for long-lived tools.
//
// A SIGINT handler cannot safely export telemetry: exporters allocate, take
// the registry mutex and do file I/O, none of which is async-signal-safe.
// The portable pattern is to block the shutdown signals in every thread and
// park one dedicated thread in sigwait(): the signal is then *received* by
// that thread as a normal return value, and the callback runs in an ordinary
// thread context where locks, allocation and file writes are all legal.
//
// RunOnShutdownSignal() implements that pattern. Call it from main() before
// any worker threads exist (spawned threads inherit the signal mask, which
// is what keeps the signal out of their default handlers). The callback is
// invoked once, on the watcher thread, for the first SIGINT/SIGTERM; it may
// flush metrics, drain a server, and/or terminate the process. A second
// signal falls through to the default action (immediate kill), so a hung
// drain can always be interrupted.
//
// This lives in src/util because it owns a thread: lint invariant 6 confines
// raw std::thread construction to src/util and src/server.

#ifndef CONVPAIRS_UTIL_SHUTDOWN_H_
#define CONVPAIRS_UTIL_SHUTDOWN_H_

#include <functional>

namespace convpairs {

/// Blocks SIGINT/SIGTERM in the calling thread (and every thread spawned
/// after) and starts a detached watcher thread that invokes `callback(sig)`
/// on the first such signal. After the callback returns (if it returns),
/// the signals revert to their default disposition, so a repeat signal
/// terminates the process. Must be called at most once per process; the
/// second call aborts.
void RunOnShutdownSignal(std::function<void(int signum)> callback);

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_SHUTDOWN_H_
