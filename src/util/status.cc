#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace convpairs {

namespace internal {

void CheckOkFailed(const char* file, int line, const char* expr,
                   const Status& status) {
  std::fprintf(stderr, "CHECK_OK failed at %s:%d: %s -> %s\n", file, line,
               expr, status.ToString().c_str());
  std::abort();
}

}  // namespace internal

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace convpairs
