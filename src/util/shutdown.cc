#include "util/shutdown.h"

#include <csignal>
#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/logging.h"

namespace convpairs {

void RunOnShutdownSignal(std::function<void(int signum)> callback) {
  static std::atomic<bool> installed{false};
  CONVPAIRS_CHECK(!installed.exchange(true));

  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGINT);
  sigaddset(&set, SIGTERM);
  CONVPAIRS_CHECK(pthread_sigmask(SIG_BLOCK, &set, nullptr) == 0);

  std::thread watcher([set, cb = std::move(callback)]() mutable {
    int sig = 0;
    if (sigwait(&set, &sig) != 0) {
      LOG_WARNING << "shutdown watcher: sigwait failed; signals revert to "
                     "default disposition";
      return;
    }
    cb(sig);
    // First signal handled; make this the only thread with the set
    // unblocked and park. A repeat signal is then delivered here with its
    // default disposition, killing the process outright — a hung drain can
    // always be interrupted. (The thread must stay alive: every other
    // thread inherited the blocked mask.)
    pthread_sigmask(SIG_UNBLOCK, &set, nullptr);
    while (true) pause();
  });
  watcher.detach();
}

}  // namespace convpairs
