#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace convpairs {

std::vector<std::string_view> Split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view text) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Strip(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatPercent(double fraction, int decimals) {
  return FormatDouble(fraction * 100.0, decimals);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace convpairs
