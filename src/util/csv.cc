#include "util/csv.h"

#include <fstream>

#include "util/check.h"

namespace convpairs {
namespace {

std::string EscapeField(const std::string& field) {
  bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CONVPAIRS_CHECK(!headers_.empty());
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  CONVPAIRS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += EscapeField(cells[i]);
    }
    out += '\n';
  };
  append_row(headers_);
  for (const auto& row : rows_) append_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return Status::IoError("cannot open for writing: " + path);
  file << ToString();
  if (!file) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace convpairs
