#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace convpairs {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* /*file*/, int /*line*/)
    : level_(level) {}

LogMessage::~LogMessage() {
  if (level_ < g_log_level.load()) return;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level_), stream_.str().c_str());
}

}  // namespace internal
}  // namespace convpairs
