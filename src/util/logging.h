// Minimal leveled logging to stderr.
//
// Experiments and examples use this for progress reporting; library code logs
// sparingly (warnings only). Output format: "[LEVEL] message".

#ifndef CONVPAIRS_UTIL_LOGGING_H_
#define CONVPAIRS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace convpairs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is actually emitted. Default: kInfo.
void SetLogLevel(LogLevel level);

/// Returns the current global minimum level.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define CONVPAIRS_LOG(level)                                          \
  ::convpairs::internal::LogMessage(::convpairs::LogLevel::k##level, \
                                    __FILE__, __LINE__)

#define LOG_DEBUG CONVPAIRS_LOG(Debug)
#define LOG_INFO CONVPAIRS_LOG(Info)
#define LOG_WARNING CONVPAIRS_LOG(Warning)
#define LOG_ERROR CONVPAIRS_LOG(Error)

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_LOGGING_H_
