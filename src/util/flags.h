// Minimal command-line flag parsing for the tools and benchmark drivers.
//
// Supports "--name=value", "--name value" and boolean "--name" forms, plus
// positional arguments. No global registry: a FlagParser is built per main()
// so tests can drive it directly.

#ifndef CONVPAIRS_UTIL_FLAGS_H_
#define CONVPAIRS_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace convpairs {

/// Declarative flag set with typed accessors and usage text.
class FlagParser {
 public:
  /// `program_description` is printed by Usage().
  explicit FlagParser(std::string program_description);

  /// Declares a flag with a default value and help text. All flags are
  /// string-typed internally; typed getters convert on access.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. Unknown flags or malformed input produce an error;
  /// non-flag arguments are collected as positional.
  Status Parse(int argc, const char* const* argv);

  /// Typed access (aborts on undeclared names; returns InvalidArgument via
  /// status for unparseable values).
  const std::string& GetString(const std::string& name) const;
  StatusOr<int64_t> GetInt(const std::string& name) const;
  StatusOr<double> GetDouble(const std::string& name) const;
  StatusOr<bool> GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// True if the user explicitly provided the flag.
  bool IsSet(const std::string& name) const;

  /// Formats the usage/help text.
  std::string Usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string value;
    std::string help;
    bool set = false;
  };
  const Flag& Lookup(const std::string& name) const;

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_FLAGS_H_
