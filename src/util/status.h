// Lightweight Status / StatusOr error handling (no exceptions on hot paths),
// in the style of Arrow / Abseil.

#ifndef CONVPAIRS_UTIL_STATUS_H_
#define CONVPAIRS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace convpairs {

/// Broad error categories; mirrors the subset of absl::StatusCode this
/// library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
/// Marked [[nodiscard]]: silently dropping a Status hides I/O and validation
/// failures, so every call site must either propagate, handle, or explicitly
/// acknowledge the error.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a checked fatal error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}              // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {       // NOLINT
    CONVPAIRS_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    CONVPAIRS_CHECK(ok());
    return *value_;
  }
  const T& value() const& {
    CONVPAIRS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CONVPAIRS_CHECK(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller. The local uses a reserved-style
/// unique name rather than `status_` so the macro can never silently shadow
/// (or capture) a member named with the ubiquitous `_`-suffix convention.
#define CONVPAIRS_RETURN_IF_ERROR(expr)                          \
  do {                                                           \
    ::convpairs::Status convpairs_return_if_error_tmp = (expr);  \
    if (!convpairs_return_if_error_tmp.ok())                     \
      return convpairs_return_if_error_tmp;                      \
  } while (0)

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_STATUS_H_
