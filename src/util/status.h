// Lightweight Status / StatusOr error handling (no exceptions on hot paths),
// in the style of Arrow / Abseil.

#ifndef CONVPAIRS_UTIL_STATUS_H_
#define CONVPAIRS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.h"

namespace convpairs {

/// Broad error categories; mirrors the subset of absl::StatusCode this
/// library needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation: either OK or a code plus message.
/// Marked [[nodiscard]]: silently dropping a Status hides I/O and validation
/// failures, so every call site must either propagate, handle, or explicitly
/// acknowledge the error.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a checked fatal error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}              // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {       // NOLINT
    CONVPAIRS_CHECK(!status_.ok());  // OK status must carry a value.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // The optional is engaged whenever ok(): the value constructor fills it and
  // the Status constructor CHECKs !ok(). clang-tidy's flow analysis cannot
  // connect CONVPAIRS_CHECK(ok()) to value_.has_value(), hence the NOLINTs.
  T& value() & {
    CONVPAIRS_CHECK(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  const T& value() const& {
    CONVPAIRS_CHECK(ok());
    return *value_;  // NOLINT(bugprone-unchecked-optional-access)
  }
  T&& value() && {
    CONVPAIRS_CHECK(ok());
    return std::move(*value_);  // NOLINT(bugprone-unchecked-optional-access)
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller. The local uses a reserved-style
/// unique name rather than `status_` so the macro can never silently shadow
/// (or capture) a member named with the ubiquitous `_`-suffix convention.
#define CONVPAIRS_RETURN_IF_ERROR(expr)                          \
  do {                                                           \
    ::convpairs::Status convpairs_return_if_error_tmp = (expr);  \
    if (!convpairs_return_if_error_tmp.ok())                     \
      return convpairs_return_if_error_tmp;                      \
  } while (0)

/// Aborts with the status message if `expr` is non-OK. This is the
/// policy-at-the-call-site counterpart of CONVPAIRS_RETURN_IF_ERROR: the
/// mechanism (e.g. SsspBudget) reports violations as Status values, and a
/// call site that considers the failure a programmer error rather than a
/// recoverable condition terminates with full context. Counted as status
/// consumption by the convpairs_analyzer budget-dataflow pass.
#define CONVPAIRS_CHECK_OK(expr)                                          \
  do {                                                                    \
    ::convpairs::Status convpairs_check_ok_tmp = (expr);                  \
    if (!convpairs_check_ok_tmp.ok()) {                                   \
      ::convpairs::internal::CheckOkFailed(__FILE__, __LINE__, #expr,     \
                                           convpairs_check_ok_tmp);       \
    }                                                                     \
  } while (0)

namespace internal {
[[noreturn]] void CheckOkFailed(const char* file, int line, const char* expr,
                                const Status& status);
}  // namespace internal

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_STATUS_H_
