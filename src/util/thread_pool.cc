#include "util/thread_pool.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace convpairs {
namespace {

// Chunks per participant: fine enough that a skewed chunk can be stolen
// around, coarse enough that per-chunk overhead (one CAS + one indirect
// call) stays invisible next to a BFS-sized body.
constexpr uint32_t kChunksPerSeat = 8;

// Hard cap on spawned workers. Callers asking for more get capped with a
// warning; the old per-call std::thread code would happily oversubscribe.
constexpr int kMaxPoolWorkers = 256;

// True on threads owned by the pool: nested regions run inline.
thread_local bool t_on_pool_worker = false;

uint64_t PackRange(uint32_t lo, uint32_t hi) {
  return (static_cast<uint64_t>(lo) << 32) | hi;
}
uint32_t RangeLo(uint64_t r) { return static_cast<uint32_t>(r >> 32); }
uint32_t RangeHi(uint64_t r) { return static_cast<uint32_t>(r); }

// Claims the front chunk of `range`. Returns false when empty.
bool PopFront(std::atomic<uint64_t>& range, uint32_t* chunk) {
  uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    uint32_t lo = RangeLo(cur);
    uint32_t hi = RangeHi(cur);
    if (lo >= hi) return false;
    if (range.compare_exchange_weak(cur, PackRange(lo + 1, hi),
                                    std::memory_order_acq_rel)) {
      *chunk = lo;
      return true;
    }
  }
}

// Steals the tail half (at least one chunk) of `range` into [*lo, *hi).
bool StealTail(std::atomic<uint64_t>& range, uint32_t* lo, uint32_t* hi) {
  uint64_t cur = range.load(std::memory_order_acquire);
  for (;;) {
    uint32_t cur_lo = RangeLo(cur);
    uint32_t cur_hi = RangeHi(cur);
    if (cur_lo >= cur_hi) return false;
    uint32_t take = std::max<uint32_t>(1, (cur_hi - cur_lo) / 2);
    uint32_t split = cur_hi - take;
    if (range.compare_exchange_weak(cur, PackRange(cur_lo, split),
                                    std::memory_order_acq_rel)) {
      *lo = split;
      *hi = cur_hi;
      return true;
    }
  }
}

// Cached instrument references (registry lookup is mutex-guarded; resolve
// once). Flushed per region / per seat, never per chunk.
struct PoolInstruments {
  obs::Counter& regions;
  obs::Counter& inline_regions;
  obs::Counter& chunks;
  obs::Counter& steals;
  obs::Gauge& workers;
  obs::Histogram& chunks_per_region;
  obs::Histogram& steal_size;

  static const PoolInstruments& Get() {
    static const PoolInstruments instruments = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return PoolInstruments{
          registry.GetCounter("util.pool.regions"),
          registry.GetCounter("util.pool.inline_regions"),
          registry.GetCounter("util.pool.chunks"),
          registry.GetCounter("util.pool.steals"),
          registry.GetGauge("util.pool.workers"),
          registry.GetHistogram("util.pool.chunks_per_region"),
          registry.GetHistogram("util.pool.steal_size")};
    }();
    return instruments;
  }
};

}  // namespace

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() = default;

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  std::lock_guard<std::mutex> lock(grow_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(grow_mu_);
  return static_cast<int>(workers_.size());
}

int ThreadPool::MaxSeats(size_t count, int num_threads) {
  int threads = internal::NormalizeThreadCount(num_threads);
  threads = std::min(threads, kMaxPoolWorkers);
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), std::max<size_t>(count, 1)));
}

void ThreadPool::EnsureWorkers(int target) {
  target = std::min(target, kMaxPoolWorkers - 1);
  std::lock_guard<std::mutex> lock(grow_mu_);
  while (static_cast<int>(workers_.size()) < target) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  PoolInstruments::Get().workers.Set(static_cast<int64_t>(workers_.size()));
}

void ThreadPool::RunRegionInline(internal::ParallelBodyRef body, size_t count) {
  PoolInstruments::Get().inline_regions.Increment();
  // Inline degradation still shows up on the caller's timeline track so a
  // trace of a single-core (or contended) run is not silently empty.
  obs::FlightScope flight(obs::FlightEventKind::kPoolRegionInline,
                          /*arg0=*/0, /*arg1=*/count);
  body(0, 0, count);
}

void ThreadPool::WorkerLoop() {
  t_on_pool_worker = true;
  uint64_t seen_epoch = 0;
  for (;;) {
    Region* region = nullptr;
    int seat = -1;
    // Wake latency: time from starting to wait until actually seated in a
    // region. Only recorded when the wait ends in work (shutdown waits and
    // lost seat races are noise, not idle cost).
    const uint64_t wait_start_ns =
        obs::FlightRecorder::enabled() ? obs::TraceNowNanos() : 0;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      if (region_ != nullptr && region_->next_seat < region_->seats) {
        region = region_;
        seat = region->next_seat++;
        ++region->active;
      }
    }
    if (region == nullptr) continue;
    if (obs::FlightRecorder::enabled() && wait_start_ns != 0) {
      const uint64_t now_ns = obs::TraceNowNanos();
      obs::FlightRecorder::Record(obs::FlightEventKind::kPoolIdle,
                                  wait_start_ns, now_ns - wait_start_ns,
                                  static_cast<uint32_t>(seat));
    }
    WorkSeat(*region, seat);
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (--region->active == 0) done_cv_.notify_all();
    }
  }
}

uint32_t ThreadPool::WorkSeat(Region& region, int seat) {
  const PoolInstruments& instruments = PoolInstruments::Get();
  uint32_t executed = 0;
  uint64_t steals = 0;
  auto run_chunk = [&](uint32_t chunk) {
    size_t begin = static_cast<size_t>(chunk) * region.grain;
    size_t end = std::min(region.count, begin + region.grain);
    obs::FlightScope flight(obs::FlightEventKind::kPoolChunk, chunk,
                            static_cast<uint64_t>(end - begin));
    region.body(seat, begin, end);
    ++executed;
  };
  for (;;) {
    uint32_t chunk = 0;
    if (PopFront(seats_[static_cast<size_t>(seat)].range, &chunk)) {
      run_chunk(chunk);
      continue;
    }
    // Own range empty: steal the tail half of the fullest other seat.
    int victim = -1;
    uint32_t victim_size = 0;
    for (int s = 0; s < region.seats; ++s) {
      if (s == seat) continue;
      uint64_t r = seats_[static_cast<size_t>(s)].range.load(
          std::memory_order_acquire);
      uint32_t size = RangeHi(r) > RangeLo(r) ? RangeHi(r) - RangeLo(r) : 0;
      if (size > victim_size) {
        victim_size = size;
        victim = s;
      }
    }
    if (victim < 0) break;  // Every range drained; claimed chunks may still
                            // be running on other seats.
    if (obs::FlightRecorder::enabled()) {
      obs::FlightRecorder::Record(obs::FlightEventKind::kPoolStealAttempt,
                                  obs::TraceNowNanos(), 0,
                                  static_cast<uint32_t>(victim));
    }
    uint32_t lo = 0;
    uint32_t hi = 0;
    if (!StealTail(seats_[static_cast<size_t>(victim)].range, &lo, &hi)) {
      continue;  // Lost the race; rescan.
    }
    ++steals;
    if (obs::FlightRecorder::enabled()) {
      obs::FlightRecorder::Record(obs::FlightEventKind::kPoolSteal,
                                  obs::TraceNowNanos(), 0,
                                  static_cast<uint32_t>(victim),
                                  static_cast<uint64_t>(hi - lo));
    }
    instruments.steal_size.Observe(static_cast<double>(hi - lo));
    // Run the first stolen chunk now; park the rest in our own (empty) seat
    // so other thieves can re-balance them.
    if (hi - lo > 1) {
      seats_[static_cast<size_t>(seat)].range.store(
          PackRange(lo + 1, hi), std::memory_order_release);
    }
    run_chunk(lo);
  }
  instruments.chunks.Add(static_cast<int64_t>(executed));
  if (steals > 0) instruments.steals.Add(static_cast<int64_t>(steals));
  return executed;
}

void ThreadPool::ParallelRange(size_t count, internal::ParallelBodyRef body,
                               int num_threads) {
  if (count == 0) return;
  int threads = internal::NormalizeThreadCount(num_threads);
  if (threads > kMaxPoolWorkers) {
    LOG_WARNING << "ThreadPool: num_threads=" << threads << " capped at "
                << kMaxPoolWorkers;
    threads = kMaxPoolWorkers;
  }
  threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), count));
  if (threads <= 1 || t_on_pool_worker) {
    RunRegionInline(body, count);
    return;
  }
  // Regions are serialized; a caller that would contend (including nested
  // regions on the calling thread) runs inline instead of blocking, so the
  // pool can never deadlock on itself.
  std::unique_lock<std::mutex> region_lock(region_mu_, std::try_to_lock);
  if (!region_lock.owns_lock()) {
    RunRegionInline(body, count);
    return;
  }
  EnsureWorkers(threads - 1);

  size_t grain = std::max<size_t>(
      1, count / (static_cast<size_t>(threads) * kChunksPerSeat));
  uint32_t num_chunks = static_cast<uint32_t>((count + grain - 1) / grain);
  int seats = std::min(threads, static_cast<int>(num_chunks));
  if (seats <= 1) {
    RunRegionInline(body, count);
    return;
  }
  // Safe to resize between regions: seat ranges are only touched by seated
  // participants, and seating requires an active region.
  if (seats_.size() < static_cast<size_t>(seats)) {
    seats_ = std::vector<Seat>(static_cast<size_t>(seats));
  }
  uint32_t per_seat = num_chunks / static_cast<uint32_t>(seats);
  uint32_t extra = num_chunks % static_cast<uint32_t>(seats);
  uint32_t next = 0;
  for (int s = 0; s < seats; ++s) {
    uint32_t take = per_seat + (static_cast<uint32_t>(s) < extra ? 1 : 0);
    seats_[static_cast<size_t>(s)].range.store(PackRange(next, next + take),
                                               std::memory_order_relaxed);
    next += take;
  }
  CONVPAIRS_CHECK_EQ(next, num_chunks);

  Region region{body, count, grain, num_chunks, seats};
  region.active = 1;  // The caller, seat 0.
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::Record(obs::FlightEventKind::kPoolRegionBegin,
                                obs::TraceNowNanos(), 0, num_chunks,
                                static_cast<uint64_t>(count));
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    region_ = &region;
    ++epoch_;
  }
  wake_cv_.notify_all();

  WorkSeat(region, 0);

  {
    // The caller drains its chunks first, then waits for the stragglers;
    // that wait is the caller seat's idle tail on the timeline.
    const uint64_t drain_start_ns =
        obs::FlightRecorder::enabled() ? obs::TraceNowNanos() : 0;
    std::unique_lock<std::mutex> lock(wake_mu_);
    --region.active;
    done_cv_.wait(lock, [&] { return region.active == 0; });
    region_ = nullptr;
    if (obs::FlightRecorder::enabled() && drain_start_ns != 0) {
      const uint64_t now_ns = obs::TraceNowNanos();
      obs::FlightRecorder::Record(obs::FlightEventKind::kPoolIdle,
                                  drain_start_ns, now_ns - drain_start_ns,
                                  /*arg0=*/0);
    }
  }
  if (obs::FlightRecorder::enabled()) {
    obs::FlightRecorder::Record(obs::FlightEventKind::kPoolRegionEnd,
                                obs::TraceNowNanos(), 0, num_chunks,
                                static_cast<uint64_t>(count));
  }
  const PoolInstruments& instruments = PoolInstruments::Get();
  instruments.regions.Increment();
  instruments.chunks_per_region.Observe(static_cast<double>(num_chunks));
}

}  // namespace convpairs
