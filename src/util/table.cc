#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/check.h"
#include "util/string_util.h"

namespace convpairs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CONVPAIRS_CHECK(!headers_.empty());
}

void TablePrinter::StartRow() { rows_.emplace_back(); }

void TablePrinter::AddCell(std::string value) {
  CONVPAIRS_CHECK(!rows_.empty());
  CONVPAIRS_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(std::move(value));
}

void TablePrinter::AddCell(const char* value) { AddCell(std::string(value)); }
void TablePrinter::AddCell(int64_t value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(uint64_t value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(int value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(unsigned value) { AddCell(std::to_string(value)); }
void TablePrinter::AddCell(double value, int decimals) {
  AddCell(FormatDouble(value, decimals));
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CONVPAIRS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      out << (c == 0 ? "| " : " | ");
      out << cell;
      out << std::string(widths[c] - cell.size(), ' ');
    }
    out << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace convpairs
