#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace convpairs {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelForBlocks(
    size_t count,
    const std::function<void(int thread_index, size_t begin, size_t end)>& body,
    int num_threads) {
  if (count == 0) return;
  if (num_threads < 0) {
    LOG_WARNING << "ParallelForBlocks: invalid num_threads=" << num_threads
                << "; clamping to DefaultThreadCount()="
                << DefaultThreadCount();
    num_threads = DefaultThreadCount();
  } else if (num_threads == 0) {
    num_threads = DefaultThreadCount();
  }
  num_threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads), count));
  if (num_threads == 1) {
    body(0, 0, count);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));
  size_t chunk = (count + static_cast<size_t>(num_threads) - 1) /
                 static_cast<size_t>(num_threads);
  for (int t = 0; t < num_threads; ++t) {
    size_t begin = static_cast<size_t>(t) * chunk;
    size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&body, t, begin, end] { body(t, begin, end); });
  }
  for (auto& worker : workers) worker.join();
}

void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 int num_threads) {
  ParallelForBlocks(
      count,
      [&body](int /*thread_index*/, size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) body(i);
      },
      num_threads);
}

}  // namespace convpairs
