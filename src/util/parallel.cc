#include "util/parallel.h"

#include <thread>

#include "util/logging.h"

namespace convpairs {

int DefaultThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace internal {

int NormalizeThreadCount(int num_threads) {
  if (num_threads < 0) {
    LOG_WARNING << "ParallelForBlocks: invalid num_threads=" << num_threads
                << "; clamping to DefaultThreadCount()="
                << DefaultThreadCount();
    return DefaultThreadCount();
  }
  return num_threads == 0 ? DefaultThreadCount() : num_threads;
}

}  // namespace internal
}  // namespace convpairs
