// Small string helpers shared by I/O and table formatting.

#ifndef CONVPAIRS_UTIL_STRING_UTIL_H_
#define CONVPAIRS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace convpairs {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string_view> Split(std::string_view text, char sep);

/// Splits `text` on any run of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
std::string_view Strip(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats `value` with `decimals` digits after the point (e.g. "12.50").
std::string FormatDouble(double value, int decimals);

/// Formats a fraction in [0,1] as a percentage string, e.g. "93.7".
std::string FormatPercent(double fraction, int decimals = 1);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_STRING_UTIL_H_
