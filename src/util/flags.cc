#include "util/flags.h"

#include <charconv>

#include "util/check.h"
#include "util/string_util.h"

namespace convpairs {

FlagParser::FlagParser(std::string program_description)
    : description_(std::move(program_description)) {}

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  CONVPAIRS_CHECK(flags_.find(name) == flags_.end());
  flags_[name] = Flag{default_value, default_value, help, false};
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (size_t eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
      has_value = true;
    } else {
      name = std::string(arg);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag: --" + name);
    }
    if (!has_value) {
      // "--flag value" form, unless the next token is another flag or the
      // flag is boolean-style (defaults to true when bare). Non-boolean
      // flags must not silently absorb "true" as a value — a bare
      // "--metrics-out" would otherwise write a file literally named
      // "true".
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        value = argv[++i];
      } else if (it->second.default_value == "true" ||
                 it->second.default_value == "false") {
        value = "true";
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " requires a value");
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::Lookup(const std::string& name) const {
  auto it = flags_.find(name);
  CONVPAIRS_CHECK(it != flags_.end());
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Lookup(name).value;
}

StatusOr<int64_t> FlagParser::GetInt(const std::string& name) const {
  const std::string& text = Lookup(name).value;
  int64_t out = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("flag --" + name +
                                   " expects an integer, got: " + text);
  }
  return out;
}

StatusOr<double> FlagParser::GetDouble(const std::string& name) const {
  const std::string& text = Lookup(name).value;
  double out = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("flag --" + name +
                                   " expects a number, got: " + text);
  }
  return out;
}

StatusOr<bool> FlagParser::GetBool(const std::string& name) const {
  const std::string& text = Lookup(name).value;
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  return Status::InvalidArgument("flag --" + name +
                                 " expects a boolean, got: " + text);
}

bool FlagParser::IsSet(const std::string& name) const {
  return Lookup(name).set;
}

std::string FlagParser::Usage() const {
  std::string out = description_ + "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " +
           (flag.default_value.empty() ? "\"\"" : flag.default_value) + ")\n";
    out += "      " + flag.help + "\n";
  }
  return out;
}

}  // namespace convpairs
