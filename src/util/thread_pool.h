// Persistent work-stealing thread pool behind util/parallel.h.
//
// The previous ParallelForBlocks spawned std::threads per call and split the
// range statically, which load-imbalances badly on skewed-degree graphs and
// partially-isolated snapshots (a block of isolated sources finishes
// instantly while another block carries all the BFS work). This pool spawns
// workers once, hands out chunks dynamically, and lets idle participants
// steal the tail half of a loaded participant's remaining range, so the
// region ends when the slowest *chunk* finishes, not the slowest block.
//
// Scheduling model:
//  - A parallel region over [0, count) is cut into chunks of
//    ~count / (participants * kChunksPerWorker) items.
//  - Each participant seat owns a contiguous range of chunk ids, packed into
//    one atomic uint64 (lo << 32 | hi). Owners pop from the front with a
//    CAS; thieves steal the tail half of the largest remaining range.
//  - The calling thread always participates (seat 0), so a region completes
//    even if every pool worker is busy or the process just forked — the pool
//    never deadlocks on worker availability.
//  - Nested regions (a body calling ParallelFor again) and regions issued
//    while another region is running degrade to inline serial execution on
//    the calling thread; they stay correct, just unparallel.
//
// Telemetry (src/obs): util.pool.regions / chunks / steals / inline_regions
// counters, util.pool.workers gauge, util.pool.region_items histogram.
// When flight recording is on (CONVPAIRS_TRACE_OUT / --trace-out) the pool
// additionally emits per-seat timeline events — region begin/end, chunk
// execution, steal attempts/successes, idle waits — into the lock-free
// obs::FlightRecorder for Perfetto export; with recording off every event
// site is a single relaxed bool load.

#ifndef CONVPAIRS_UTIL_THREAD_POOL_H_
#define CONVPAIRS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace convpairs {
namespace internal {

/// Non-owning type-erased reference to a `void(int, size_t, size_t)`
/// callable. Unlike std::function this never allocates: parallel hot paths
/// pay one indirect call per chunk and nothing per region.
class ParallelBodyRef {
 public:
  template <typename F>
  explicit ParallelBodyRef(F& f)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        invoke_([](void* obj, int worker, size_t begin, size_t end) {
          (*static_cast<F*>(obj))(worker, begin, end);
        }) {}

  void operator()(int worker, size_t begin, size_t end) const {
    invoke_(obj_, worker, begin, end);
  }

 private:
  void* obj_;
  void (*invoke_)(void*, int, size_t, size_t);
};

}  // namespace internal

/// Spawn-once worker pool executing chunked parallel ranges. Use through
/// ParallelForBlocks / ParallelFor (util/parallel.h); the class is public so
/// tests can exercise scheduling directly.
class ThreadPool {
 public:
  /// The process-wide pool every ParallelFor call runs on.
  static ThreadPool& Global();

  ThreadPool();
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs `body(seat, begin, end)` over dynamically scheduled chunks of
  /// [0, count). `num_threads` follows the util/parallel.h contract (0 =
  /// default, negative = clamped with a warning). Blocks until every chunk's
  /// body invocation has returned; the caller observes all writes.
  void ParallelRange(size_t count, internal::ParallelBodyRef body,
                     int num_threads);

  /// Upper bound (inclusive of the calling thread) on the seat indices a
  /// ParallelRange(count, ., num_threads) call may use — size per-worker
  /// scratch arrays with this. Matches the clamping in ParallelRange.
  static int MaxSeats(size_t count, int num_threads);

  /// Workers currently spawned (grows on demand, never shrinks).
  int num_workers() const;

 private:
  struct alignas(64) Seat {
    // Packed chunk-id range [lo, hi): lo in the high 32 bits, hi in the low
    // 32 bits. Owners CAS the front; thieves CAS the tail.
    std::atomic<uint64_t> range{0};
  };

  struct Region {
    internal::ParallelBodyRef body;
    size_t count = 0;
    size_t grain = 1;
    uint32_t num_chunks = 0;
    int seats = 0;
    // Guarded by wake_mu_: seat 0 is the caller's; `active` counts seated
    // participants still inside WorkSeat (the caller included).
    int next_seat = 1;
    int active = 0;
  };

  void WorkerLoop();
  void EnsureWorkers(int target);
  /// Claims chunks (own range first, then steals) until none remain.
  /// Returns the number of chunks this seat executed.
  uint32_t WorkSeat(Region& region, int seat);
  void RunRegionInline(internal::ParallelBodyRef body, size_t count);

  mutable std::mutex grow_mu_;
  std::vector<std::thread> workers_;

  // Serializes regions; contended callers run inline instead of blocking.
  std::mutex region_mu_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_ = 0;        // Guarded by wake_mu_.
  Region* region_ = nullptr;  // Guarded by wake_mu_; null when idle.
  bool stop_ = false;         // Guarded by wake_mu_.

  std::vector<Seat> seats_;  // Sized to the largest region seen.
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_THREAD_POOL_H_
