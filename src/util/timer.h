// Wall-clock timing helper for experiment drivers.

#ifndef CONVPAIRS_UTIL_TIMER_H_
#define CONVPAIRS_UTIL_TIMER_H_

#include <chrono>

namespace convpairs {

/// Measures elapsed wall-clock time from construction (or the last Reset).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the measurement.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_TIMER_H_
