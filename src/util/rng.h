// Deterministic pseudo-random number generation.
//
// All experiment code takes an explicit Rng so every table/figure in the
// paper reproduction is bit-for-bit repeatable. The engine is xoshiro256**,
// seeded through SplitMix64 (the construction recommended by its authors).

#ifndef CONVPAIRS_UTIL_RNG_H_
#define CONVPAIRS_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace convpairs {

/// Deterministic 64-bit PRNG (xoshiro256**). Not cryptographically secure;
/// intended for reproducible sampling in experiments.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield identical streams on every
  /// platform.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples `count` distinct values from [0, population) via partial
  /// Fisher-Yates. Requires count <= population. Output order is random.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t population,
                                                 uint32_t count);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Forks an independent stream; used to give parallel workers their own
  /// deterministic generators.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_RNG_H_
