// Minimal data-parallel loop over an index range.
//
// Ground-truth all-pairs computation and Brandes betweenness are
// embarrassingly parallel over sources; this helper uses std::thread with a
// static block partition. On a single-core machine it degrades to a plain
// loop with no thread overhead.

#ifndef CONVPAIRS_UTIL_PARALLEL_H_
#define CONVPAIRS_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace convpairs {

/// Number of worker threads ParallelFor will use by default
/// (hardware_concurrency, at least 1).
int DefaultThreadCount();

/// Invokes `body(thread_index, begin, end)` over a static partition of
/// [0, count) across `num_threads` workers. `num_threads == 0` means
/// DefaultThreadCount(); negative values are invalid and are clamped to the
/// default with a logged warning (never undefined behavior). The effective
/// worker count is additionally capped at `count`, and a single-worker run
/// executes inline on the calling thread with no thread spawn.
///
/// Thread-safety contract:
///  - `body` is invoked concurrently from multiple threads, at most once per
///    worker, with pairwise-disjoint `[begin, end)` ranges that exactly tile
///    [0, count). It must be safe to run concurrently for disjoint ranges:
///    writes to shared state require synchronization (mutex or atomics);
///    per-range writes to distinct elements of a shared container are safe.
///  - `thread_index` is in [0, effective_threads) and may be used to index
///    per-worker scratch buffers without locking.
///  - The call blocks until every worker has finished (join barrier); the
///    caller observes all of `body`'s writes afterwards
///    (happens-before via std::thread::join).
///  - Exceptions thrown by `body` terminate the process (std::thread).
///  - Nested calls are permitted but each level spawns its own workers;
///    avoid nesting on hot paths.
void ParallelForBlocks(
    size_t count,
    const std::function<void(int thread_index, size_t begin, size_t end)>& body,
    int num_threads = 0);

/// Convenience wrapper calling `body(i)` for each i in [0, count).
/// Same threading and safety contract as ParallelForBlocks.
void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 int num_threads = 0);

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_PARALLEL_H_
