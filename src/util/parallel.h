// Data-parallel loops over an index range, executed on the persistent
// work-stealing thread pool (util/thread_pool.h).
//
// Ground-truth all-pairs computation, batched BFS and Brandes betweenness
// are embarrassingly parallel over sources but heavily skewed per source
// (isolated nodes are free, hubs are not); the pool's chunked dynamic
// scheduling keeps every worker busy where the old static block partition
// left whole blocks idle. On a single-core machine — or when the pool is
// busy — a loop degrades to a plain inline loop with no thread overhead.

#ifndef CONVPAIRS_UTIL_PARALLEL_H_
#define CONVPAIRS_UTIL_PARALLEL_H_

#include <cstddef>
#include <utility>

#include "util/thread_pool.h"

namespace convpairs {

/// Number of worker threads ParallelFor will use by default
/// (hardware_concurrency, at least 1).
int DefaultThreadCount();

namespace internal {

/// Shared num_threads normalization: 0 means DefaultThreadCount(); negative
/// values are invalid and are clamped to the default with a logged warning
/// (never undefined behavior).
int NormalizeThreadCount(int num_threads);

}  // namespace internal

/// Upper bound on the `thread_index` values a ParallelForBlocks /
/// ParallelFor call with these arguments may produce — size per-worker
/// scratch arrays with this. Never exceeds NormalizeThreadCount(num_threads)
/// or `count`.
inline int MaxParallelWorkers(size_t count, int num_threads = 0) {
  return ThreadPool::MaxSeats(count, num_threads);
}

/// Invokes `body(thread_index, begin, end)` over chunks of [0, count)
/// scheduled dynamically across at most `num_threads` workers of the global
/// pool (`num_threads == 0` means DefaultThreadCount(), negative clamps to
/// the default with a warning). Templated on the callable: the body is
/// passed by reference with no std::function boxing or allocation.
///
/// Thread-safety contract:
///  - `body` is invoked concurrently from multiple threads with pairwise-
///    disjoint `[begin, end)` ranges that exactly tile [0, count). Unlike
///    the old static partition, a worker may receive *several* chunks, so
///    `body` can run more than once per thread_index — never concurrently
///    for the same thread_index, and per-invocation state must aggregate
///    (e.g. `local = max(local, ...)` into per-worker slots, not `local =`).
///  - `thread_index` is in [0, MaxParallelWorkers(count, num_threads)) and
///    may be used to index per-worker scratch without locking.
///  - Writes to shared state require synchronization (mutex or atomics);
///    writes to distinct elements of a shared container are safe.
///  - The call blocks until every chunk's invocation has returned; the
///    caller observes all of `body`'s writes afterwards.
///  - Exceptions thrown by `body` terminate the process.
///  - Nested calls (and calls while another region runs) are safe: they
///    execute inline and serially on the calling thread.
template <typename Body>
void ParallelForBlocks(size_t count, Body&& body, int num_threads = 0) {
  ThreadPool::Global().ParallelRange(
      count, internal::ParallelBodyRef(body), num_threads);
}

/// Convenience wrapper calling `body(i)` for each i in [0, count).
/// Same threading and safety contract as ParallelForBlocks.
template <typename Body>
void ParallelFor(size_t count, Body&& body, int num_threads = 0) {
  auto blocks = [&body](int /*thread_index*/, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) body(i);
  };
  ThreadPool::Global().ParallelRange(
      count, internal::ParallelBodyRef(blocks), num_threads);
}

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_PARALLEL_H_
