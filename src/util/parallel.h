// Minimal data-parallel loop over an index range.
//
// Ground-truth all-pairs computation and Brandes betweenness are
// embarrassingly parallel over sources; this helper uses std::thread with a
// static block partition. On a single-core machine it degrades to a plain
// loop with no thread overhead.

#ifndef CONVPAIRS_UTIL_PARALLEL_H_
#define CONVPAIRS_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace convpairs {

/// Number of worker threads ParallelFor will use by default
/// (hardware_concurrency, at least 1).
int DefaultThreadCount();

/// Invokes `body(thread_index, begin, end)` over a static partition of
/// [0, count) across `num_threads` workers (0 = DefaultThreadCount()).
/// Blocks until all workers finish. `body` must be safe to run concurrently
/// for disjoint ranges.
void ParallelForBlocks(
    size_t count,
    const std::function<void(int thread_index, size_t begin, size_t end)>& body,
    int num_threads = 0);

/// Convenience wrapper calling `body(i)` for each i in [0, count).
void ParallelFor(size_t count, const std::function<void(size_t)>& body,
                 int num_threads = 0);

}  // namespace convpairs

#endif  // CONVPAIRS_UTIL_PARALLEL_H_
