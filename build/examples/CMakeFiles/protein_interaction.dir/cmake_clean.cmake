file(REMOVE_RECURSE
  "CMakeFiles/protein_interaction.dir/protein_interaction.cpp.o"
  "CMakeFiles/protein_interaction.dir/protein_interaction.cpp.o.d"
  "protein_interaction"
  "protein_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protein_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
