# Empty dependencies file for protein_interaction.
# This may be replaced when dependencies are built.
