# Empty dependencies file for link_decay.
# This may be replaced when dependencies are built.
