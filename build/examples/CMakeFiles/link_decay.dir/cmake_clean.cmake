file(REMOVE_RECURSE
  "CMakeFiles/link_decay.dir/link_decay.cpp.o"
  "CMakeFiles/link_decay.dir/link_decay.cpp.o.d"
  "link_decay"
  "link_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
