# Empty dependencies file for classifier_training.
# This may be replaced when dependencies are built.
