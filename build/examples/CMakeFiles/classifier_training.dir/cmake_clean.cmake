file(REMOVE_RECURSE
  "CMakeFiles/classifier_training.dir/classifier_training.cpp.o"
  "CMakeFiles/classifier_training.dir/classifier_training.cpp.o.d"
  "classifier_training"
  "classifier_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
