# Empty dependencies file for convpairs_cli.
# This may be replaced when dependencies are built.
