file(REMOVE_RECURSE
  "CMakeFiles/convpairs_cli.dir/convpairs_cli.cc.o"
  "CMakeFiles/convpairs_cli.dir/convpairs_cli.cc.o.d"
  "convpairs_cli"
  "convpairs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
