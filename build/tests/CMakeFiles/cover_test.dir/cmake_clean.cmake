file(REMOVE_RECURSE
  "CMakeFiles/cover_test.dir/cover/coverage_test.cc.o"
  "CMakeFiles/cover_test.dir/cover/coverage_test.cc.o.d"
  "CMakeFiles/cover_test.dir/cover/exact_cover_test.cc.o"
  "CMakeFiles/cover_test.dir/cover/exact_cover_test.cc.o.d"
  "CMakeFiles/cover_test.dir/cover/greedy_cover_test.cc.o"
  "CMakeFiles/cover_test.dir/cover/greedy_cover_test.cc.o.d"
  "CMakeFiles/cover_test.dir/cover/pair_graph_test.cc.o"
  "CMakeFiles/cover_test.dir/cover/pair_graph_test.cc.o.d"
  "cover_test"
  "cover_test.pdb"
  "cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
