# Empty dependencies file for cover_test.
# This may be replaced when dependencies are built.
