file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/boosted_stumps_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/boosted_stumps_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/logistic_regression_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/metrics_test.cc.o.d"
  "CMakeFiles/ml_test.dir/ml/scaler_test.cc.o"
  "CMakeFiles/ml_test.dir/ml/scaler_test.cc.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
