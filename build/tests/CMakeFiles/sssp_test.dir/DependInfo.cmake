
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sssp/all_pairs_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/all_pairs_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/all_pairs_test.cc.o.d"
  "/root/repo/tests/sssp/bfs_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/bfs_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/bfs_test.cc.o.d"
  "/root/repo/tests/sssp/budget_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/budget_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/budget_test.cc.o.d"
  "/root/repo/tests/sssp/dijkstra_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cc.o.d"
  "/root/repo/tests/sssp/distance_matrix_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/distance_matrix_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/distance_matrix_test.cc.o.d"
  "/root/repo/tests/sssp/incremental_test.cc" "tests/CMakeFiles/sssp_test.dir/sssp/incremental_test.cc.o" "gcc" "tests/CMakeFiles/sssp_test.dir/sssp/incremental_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_landmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
