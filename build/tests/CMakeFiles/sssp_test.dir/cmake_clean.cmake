file(REMOVE_RECURSE
  "CMakeFiles/sssp_test.dir/sssp/all_pairs_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/all_pairs_test.cc.o.d"
  "CMakeFiles/sssp_test.dir/sssp/bfs_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/bfs_test.cc.o.d"
  "CMakeFiles/sssp_test.dir/sssp/budget_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/budget_test.cc.o.d"
  "CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/dijkstra_test.cc.o.d"
  "CMakeFiles/sssp_test.dir/sssp/distance_matrix_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/distance_matrix_test.cc.o.d"
  "CMakeFiles/sssp_test.dir/sssp/incremental_test.cc.o"
  "CMakeFiles/sssp_test.dir/sssp/incremental_test.cc.o.d"
  "sssp_test"
  "sssp_test.pdb"
  "sssp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sssp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
