file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/budget_accounting_test.cc.o"
  "CMakeFiles/core_test.dir/core/budget_accounting_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/classifier_test.cc.o"
  "CMakeFiles/core_test.dir/core/classifier_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/diverging_test.cc.o"
  "CMakeFiles/core_test.dir/core/diverging_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/experiment_edge_test.cc.o"
  "CMakeFiles/core_test.dir/core/experiment_edge_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/experiment_test.cc.o"
  "CMakeFiles/core_test.dir/core/experiment_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/ground_truth_test.cc.o"
  "CMakeFiles/core_test.dir/core/ground_truth_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/proximity_tracker_test.cc.o"
  "CMakeFiles/core_test.dir/core/proximity_tracker_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/selectors_test.cc.o"
  "CMakeFiles/core_test.dir/core/selectors_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/stream_monitor_test.cc.o"
  "CMakeFiles/core_test.dir/core/stream_monitor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/top_k_test.cc.o"
  "CMakeFiles/core_test.dir/core/top_k_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
