
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/budget_accounting_test.cc" "tests/CMakeFiles/core_test.dir/core/budget_accounting_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budget_accounting_test.cc.o.d"
  "/root/repo/tests/core/classifier_test.cc" "tests/CMakeFiles/core_test.dir/core/classifier_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/classifier_test.cc.o.d"
  "/root/repo/tests/core/diverging_test.cc" "tests/CMakeFiles/core_test.dir/core/diverging_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/diverging_test.cc.o.d"
  "/root/repo/tests/core/experiment_edge_test.cc" "tests/CMakeFiles/core_test.dir/core/experiment_edge_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/experiment_edge_test.cc.o.d"
  "/root/repo/tests/core/experiment_test.cc" "tests/CMakeFiles/core_test.dir/core/experiment_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/experiment_test.cc.o.d"
  "/root/repo/tests/core/ground_truth_test.cc" "tests/CMakeFiles/core_test.dir/core/ground_truth_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ground_truth_test.cc.o.d"
  "/root/repo/tests/core/proximity_tracker_test.cc" "tests/CMakeFiles/core_test.dir/core/proximity_tracker_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/proximity_tracker_test.cc.o.d"
  "/root/repo/tests/core/selectors_test.cc" "tests/CMakeFiles/core_test.dir/core/selectors_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/selectors_test.cc.o.d"
  "/root/repo/tests/core/stream_monitor_test.cc" "tests/CMakeFiles/core_test.dir/core/stream_monitor_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stream_monitor_test.cc.o.d"
  "/root/repo/tests/core/top_k_test.cc" "tests/CMakeFiles/core_test.dir/core/top_k_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/top_k_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_landmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
