file(REMOVE_RECURSE
  "CMakeFiles/centrality_test.dir/centrality/brandes_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/brandes_test.cc.o.d"
  "CMakeFiles/centrality_test.dir/centrality/closeness_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/closeness_test.cc.o.d"
  "CMakeFiles/centrality_test.dir/centrality/degree_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/degree_test.cc.o.d"
  "CMakeFiles/centrality_test.dir/centrality/kcore_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/kcore_test.cc.o.d"
  "CMakeFiles/centrality_test.dir/centrality/pagerank_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/pagerank_test.cc.o.d"
  "CMakeFiles/centrality_test.dir/centrality/sampled_betweenness_test.cc.o"
  "CMakeFiles/centrality_test.dir/centrality/sampled_betweenness_test.cc.o.d"
  "centrality_test"
  "centrality_test.pdb"
  "centrality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/centrality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
