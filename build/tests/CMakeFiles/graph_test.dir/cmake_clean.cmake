file(REMOVE_RECURSE
  "CMakeFiles/graph_test.dir/graph/binary_io_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/binary_io_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/connected_components_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/connected_components_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/dynamic_stream_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/dynamic_stream_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/graph_io_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/graph_io_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/graph_stats_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/graph_stats_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/temporal_graph_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/temporal_graph_test.cc.o.d"
  "CMakeFiles/graph_test.dir/graph/validation_test.cc.o"
  "CMakeFiles/graph_test.dir/graph/validation_test.cc.o.d"
  "graph_test"
  "graph_test.pdb"
  "graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
