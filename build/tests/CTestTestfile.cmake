# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/sssp_test[1]_include.cmake")
include("/root/repo/build/tests/centrality_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/cover_test[1]_include.cmake")
include("/root/repo/build/tests/landmark_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
