file(REMOVE_RECURSE
  "CMakeFiles/convpairs_bench_common.dir/bench/common/bench_env.cc.o"
  "CMakeFiles/convpairs_bench_common.dir/bench/common/bench_env.cc.o.d"
  "libconvpairs_bench_common.a"
  "libconvpairs_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
