file(REMOVE_RECURSE
  "libconvpairs_bench_common.a"
)
