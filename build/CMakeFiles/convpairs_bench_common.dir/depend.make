# Empty dependencies file for convpairs_bench_common.
# This may be replaced when dependencies are built.
