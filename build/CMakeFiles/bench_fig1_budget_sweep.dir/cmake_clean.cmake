file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_budget_sweep.dir/bench/bench_fig1_budget_sweep.cc.o"
  "CMakeFiles/bench_fig1_budget_sweep.dir/bench/bench_fig1_budget_sweep.cc.o.d"
  "bench/bench_fig1_budget_sweep"
  "bench/bench_fig1_budget_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_budget_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
