file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_classifier.dir/bench/bench_fig3_classifier.cc.o"
  "CMakeFiles/bench_fig3_classifier.dir/bench/bench_fig3_classifier.cc.o.d"
  "bench/bench_fig3_classifier"
  "bench/bench_fig3_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
