# Empty dependencies file for bench_ablation_estimator.
# This may be replaced when dependencies are built.
