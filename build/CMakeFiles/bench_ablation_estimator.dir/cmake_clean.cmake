file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_estimator.dir/bench/bench_ablation_estimator.cc.o"
  "CMakeFiles/bench_ablation_estimator.dir/bench/bench_ablation_estimator.cc.o.d"
  "bench/bench_ablation_estimator"
  "bench/bench_ablation_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
