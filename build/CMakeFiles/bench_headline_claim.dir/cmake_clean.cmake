file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_claim.dir/bench/bench_headline_claim.cc.o"
  "CMakeFiles/bench_headline_claim.dir/bench/bench_headline_claim.cc.o.d"
  "bench/bench_headline_claim"
  "bench/bench_headline_claim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_claim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
