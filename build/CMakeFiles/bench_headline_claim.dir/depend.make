# Empty dependencies file for bench_headline_claim.
# This may be replaced when dependencies are built.
