# Empty compiler generated dependencies file for bench_table3_pairgraph.
# This may be replaced when dependencies are built.
