file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_pairgraph.dir/bench/bench_table3_pairgraph.cc.o"
  "CMakeFiles/bench_table3_pairgraph.dir/bench/bench_table3_pairgraph.cc.o.d"
  "bench/bench_table3_pairgraph"
  "bench/bench_table3_pairgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_pairgraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
