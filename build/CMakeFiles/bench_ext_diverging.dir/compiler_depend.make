# Empty compiler generated dependencies file for bench_ext_diverging.
# This may be replaced when dependencies are built.
