file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_diverging.dir/bench/bench_ext_diverging.cc.o"
  "CMakeFiles/bench_ext_diverging.dir/bench/bench_ext_diverging.cc.o.d"
  "bench/bench_ext_diverging"
  "bench/bench_ext_diverging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_diverging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
