file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_centrality.dir/bench/bench_ablation_centrality.cc.o"
  "CMakeFiles/bench_ablation_centrality.dir/bench/bench_ablation_centrality.cc.o.d"
  "bench/bench_ablation_centrality"
  "bench/bench_ablation_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
