file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sampled_bet.dir/bench/bench_ablation_sampled_bet.cc.o"
  "CMakeFiles/bench_ablation_sampled_bet.dir/bench/bench_ablation_sampled_bet.cc.o.d"
  "bench/bench_ablation_sampled_bet"
  "bench/bench_ablation_sampled_bet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sampled_bet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
