
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_sampled_bet.cc" "CMakeFiles/bench_ablation_sampled_bet.dir/bench/bench_ablation_sampled_bet.cc.o" "gcc" "CMakeFiles/bench_ablation_sampled_bet.dir/bench/bench_ablation_sampled_bet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/convpairs_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_landmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
