# Empty compiler generated dependencies file for bench_ablation_sampled_bet.
# This may be replaced when dependencies are built.
