file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_candidate_quality.dir/bench/bench_fig2_candidate_quality.cc.o"
  "CMakeFiles/bench_fig2_candidate_quality.dir/bench/bench_fig2_candidate_quality.cc.o.d"
  "bench/bench_fig2_candidate_quality"
  "bench/bench_fig2_candidate_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_candidate_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
