# Empty dependencies file for bench_fig2_candidate_quality.
# This may be replaced when dependencies are built.
