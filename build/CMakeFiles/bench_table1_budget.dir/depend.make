# Empty dependencies file for bench_table1_budget.
# This may be replaced when dependencies are built.
