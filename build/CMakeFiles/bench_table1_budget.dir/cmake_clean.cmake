file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_budget.dir/bench/bench_table1_budget.cc.o"
  "CMakeFiles/bench_table1_budget.dir/bench/bench_table1_budget.cc.o.d"
  "bench/bench_table1_budget"
  "bench/bench_table1_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
