# Empty dependencies file for bench_table6_incidence.
# This may be replaced when dependencies are built.
