file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_incidence.dir/bench/bench_table6_incidence.cc.o"
  "CMakeFiles/bench_table6_incidence.dir/bench/bench_table6_incidence.cc.o.d"
  "bench/bench_table6_incidence"
  "bench/bench_table6_incidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_incidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
