file(REMOVE_RECURSE
  "libconvpairs_landmark.a"
)
