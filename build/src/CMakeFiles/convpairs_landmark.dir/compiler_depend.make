# Empty compiler generated dependencies file for convpairs_landmark.
# This may be replaced when dependencies are built.
