
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/landmark/distance_estimator.cc" "src/CMakeFiles/convpairs_landmark.dir/landmark/distance_estimator.cc.o" "gcc" "src/CMakeFiles/convpairs_landmark.dir/landmark/distance_estimator.cc.o.d"
  "/root/repo/src/landmark/landmark_features.cc" "src/CMakeFiles/convpairs_landmark.dir/landmark/landmark_features.cc.o" "gcc" "src/CMakeFiles/convpairs_landmark.dir/landmark/landmark_features.cc.o.d"
  "/root/repo/src/landmark/landmark_selector.cc" "src/CMakeFiles/convpairs_landmark.dir/landmark/landmark_selector.cc.o" "gcc" "src/CMakeFiles/convpairs_landmark.dir/landmark/landmark_selector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
