file(REMOVE_RECURSE
  "CMakeFiles/convpairs_landmark.dir/landmark/distance_estimator.cc.o"
  "CMakeFiles/convpairs_landmark.dir/landmark/distance_estimator.cc.o.d"
  "CMakeFiles/convpairs_landmark.dir/landmark/landmark_features.cc.o"
  "CMakeFiles/convpairs_landmark.dir/landmark/landmark_features.cc.o.d"
  "CMakeFiles/convpairs_landmark.dir/landmark/landmark_selector.cc.o"
  "CMakeFiles/convpairs_landmark.dir/landmark/landmark_selector.cc.o.d"
  "libconvpairs_landmark.a"
  "libconvpairs_landmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_landmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
