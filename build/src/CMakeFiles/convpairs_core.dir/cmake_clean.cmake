file(REMOVE_RECURSE
  "CMakeFiles/convpairs_core.dir/core/diverging.cc.o"
  "CMakeFiles/convpairs_core.dir/core/diverging.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/experiment.cc.o"
  "CMakeFiles/convpairs_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/ground_truth.cc.o"
  "CMakeFiles/convpairs_core.dir/core/ground_truth.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/proximity_tracker.cc.o"
  "CMakeFiles/convpairs_core.dir/core/proximity_tracker.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selector.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selector.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selector_registry.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selector_registry.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/centrality_selectors.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/centrality_selectors.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/classifier_selector.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/classifier_selector.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/degree_selectors.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/degree_selectors.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/dispersion_selectors.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/dispersion_selectors.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/hybrid_selectors.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/hybrid_selectors.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/landmark_selectors.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/landmark_selectors.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/selectors/random_selector.cc.o"
  "CMakeFiles/convpairs_core.dir/core/selectors/random_selector.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/stream_monitor.cc.o"
  "CMakeFiles/convpairs_core.dir/core/stream_monitor.cc.o.d"
  "CMakeFiles/convpairs_core.dir/core/top_k.cc.o"
  "CMakeFiles/convpairs_core.dir/core/top_k.cc.o.d"
  "libconvpairs_core.a"
  "libconvpairs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
