# Empty compiler generated dependencies file for convpairs_core.
# This may be replaced when dependencies are built.
