file(REMOVE_RECURSE
  "libconvpairs_core.a"
)
