
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/diverging.cc" "src/CMakeFiles/convpairs_core.dir/core/diverging.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/diverging.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/convpairs_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/ground_truth.cc" "src/CMakeFiles/convpairs_core.dir/core/ground_truth.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/ground_truth.cc.o.d"
  "/root/repo/src/core/proximity_tracker.cc" "src/CMakeFiles/convpairs_core.dir/core/proximity_tracker.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/proximity_tracker.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/convpairs_core.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selector.cc.o.d"
  "/root/repo/src/core/selector_registry.cc" "src/CMakeFiles/convpairs_core.dir/core/selector_registry.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selector_registry.cc.o.d"
  "/root/repo/src/core/selectors/centrality_selectors.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/centrality_selectors.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/centrality_selectors.cc.o.d"
  "/root/repo/src/core/selectors/classifier_selector.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/classifier_selector.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/classifier_selector.cc.o.d"
  "/root/repo/src/core/selectors/degree_selectors.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/degree_selectors.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/degree_selectors.cc.o.d"
  "/root/repo/src/core/selectors/dispersion_selectors.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/dispersion_selectors.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/dispersion_selectors.cc.o.d"
  "/root/repo/src/core/selectors/hybrid_selectors.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/hybrid_selectors.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/hybrid_selectors.cc.o.d"
  "/root/repo/src/core/selectors/landmark_selectors.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/landmark_selectors.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/landmark_selectors.cc.o.d"
  "/root/repo/src/core/selectors/random_selector.cc" "src/CMakeFiles/convpairs_core.dir/core/selectors/random_selector.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/selectors/random_selector.cc.o.d"
  "/root/repo/src/core/stream_monitor.cc" "src/CMakeFiles/convpairs_core.dir/core/stream_monitor.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/stream_monitor.cc.o.d"
  "/root/repo/src/core/top_k.cc" "src/CMakeFiles/convpairs_core.dir/core/top_k.cc.o" "gcc" "src/CMakeFiles/convpairs_core.dir/core/top_k.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_cover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_landmark.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_centrality.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
