file(REMOVE_RECURSE
  "CMakeFiles/convpairs_gen.dir/gen/affiliation_generator.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/affiliation_generator.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/ba_generator.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/ba_generator.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/datasets.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/datasets.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/er_generator.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/er_generator.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/forest_fire.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/forest_fire.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/friendship_generator.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/friendship_generator.cc.o.d"
  "CMakeFiles/convpairs_gen.dir/gen/ws_generator.cc.o"
  "CMakeFiles/convpairs_gen.dir/gen/ws_generator.cc.o.d"
  "libconvpairs_gen.a"
  "libconvpairs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
