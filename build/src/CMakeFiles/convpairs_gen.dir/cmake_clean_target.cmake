file(REMOVE_RECURSE
  "libconvpairs_gen.a"
)
