# Empty dependencies file for convpairs_gen.
# This may be replaced when dependencies are built.
