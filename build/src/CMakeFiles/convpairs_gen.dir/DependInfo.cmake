
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/affiliation_generator.cc" "src/CMakeFiles/convpairs_gen.dir/gen/affiliation_generator.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/affiliation_generator.cc.o.d"
  "/root/repo/src/gen/ba_generator.cc" "src/CMakeFiles/convpairs_gen.dir/gen/ba_generator.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/ba_generator.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/convpairs_gen.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/er_generator.cc" "src/CMakeFiles/convpairs_gen.dir/gen/er_generator.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/er_generator.cc.o.d"
  "/root/repo/src/gen/forest_fire.cc" "src/CMakeFiles/convpairs_gen.dir/gen/forest_fire.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/forest_fire.cc.o.d"
  "/root/repo/src/gen/friendship_generator.cc" "src/CMakeFiles/convpairs_gen.dir/gen/friendship_generator.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/friendship_generator.cc.o.d"
  "/root/repo/src/gen/ws_generator.cc" "src/CMakeFiles/convpairs_gen.dir/gen/ws_generator.cc.o" "gcc" "src/CMakeFiles/convpairs_gen.dir/gen/ws_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
