file(REMOVE_RECURSE
  "libconvpairs_graph.a"
)
