file(REMOVE_RECURSE
  "CMakeFiles/convpairs_graph.dir/graph/binary_io.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/binary_io.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/connected_components.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/connected_components.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/dynamic_stream.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/dynamic_stream.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/graph.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/graph_io.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/graph_io.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/graph_stats.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/graph_stats.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/temporal_graph.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/temporal_graph.cc.o.d"
  "CMakeFiles/convpairs_graph.dir/graph/validation.cc.o"
  "CMakeFiles/convpairs_graph.dir/graph/validation.cc.o.d"
  "libconvpairs_graph.a"
  "libconvpairs_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
