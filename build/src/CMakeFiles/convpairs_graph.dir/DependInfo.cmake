
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/binary_io.cc" "src/CMakeFiles/convpairs_graph.dir/graph/binary_io.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/binary_io.cc.o.d"
  "/root/repo/src/graph/connected_components.cc" "src/CMakeFiles/convpairs_graph.dir/graph/connected_components.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/connected_components.cc.o.d"
  "/root/repo/src/graph/dynamic_stream.cc" "src/CMakeFiles/convpairs_graph.dir/graph/dynamic_stream.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/dynamic_stream.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/convpairs_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/convpairs_graph.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/CMakeFiles/convpairs_graph.dir/graph/graph_stats.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/graph_stats.cc.o.d"
  "/root/repo/src/graph/temporal_graph.cc" "src/CMakeFiles/convpairs_graph.dir/graph/temporal_graph.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/temporal_graph.cc.o.d"
  "/root/repo/src/graph/validation.cc" "src/CMakeFiles/convpairs_graph.dir/graph/validation.cc.o" "gcc" "src/CMakeFiles/convpairs_graph.dir/graph/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
