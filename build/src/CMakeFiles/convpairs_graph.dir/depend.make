# Empty dependencies file for convpairs_graph.
# This may be replaced when dependencies are built.
