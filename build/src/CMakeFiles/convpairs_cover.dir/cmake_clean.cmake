file(REMOVE_RECURSE
  "CMakeFiles/convpairs_cover.dir/cover/coverage.cc.o"
  "CMakeFiles/convpairs_cover.dir/cover/coverage.cc.o.d"
  "CMakeFiles/convpairs_cover.dir/cover/exact_cover.cc.o"
  "CMakeFiles/convpairs_cover.dir/cover/exact_cover.cc.o.d"
  "CMakeFiles/convpairs_cover.dir/cover/greedy_cover.cc.o"
  "CMakeFiles/convpairs_cover.dir/cover/greedy_cover.cc.o.d"
  "CMakeFiles/convpairs_cover.dir/cover/pair_graph.cc.o"
  "CMakeFiles/convpairs_cover.dir/cover/pair_graph.cc.o.d"
  "libconvpairs_cover.a"
  "libconvpairs_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
