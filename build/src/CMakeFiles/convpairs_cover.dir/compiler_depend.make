# Empty compiler generated dependencies file for convpairs_cover.
# This may be replaced when dependencies are built.
