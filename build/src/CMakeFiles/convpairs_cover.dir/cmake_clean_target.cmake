file(REMOVE_RECURSE
  "libconvpairs_cover.a"
)
