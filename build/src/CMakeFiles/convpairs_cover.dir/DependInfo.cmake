
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cover/coverage.cc" "src/CMakeFiles/convpairs_cover.dir/cover/coverage.cc.o" "gcc" "src/CMakeFiles/convpairs_cover.dir/cover/coverage.cc.o.d"
  "/root/repo/src/cover/exact_cover.cc" "src/CMakeFiles/convpairs_cover.dir/cover/exact_cover.cc.o" "gcc" "src/CMakeFiles/convpairs_cover.dir/cover/exact_cover.cc.o.d"
  "/root/repo/src/cover/greedy_cover.cc" "src/CMakeFiles/convpairs_cover.dir/cover/greedy_cover.cc.o" "gcc" "src/CMakeFiles/convpairs_cover.dir/cover/greedy_cover.cc.o.d"
  "/root/repo/src/cover/pair_graph.cc" "src/CMakeFiles/convpairs_cover.dir/cover/pair_graph.cc.o" "gcc" "src/CMakeFiles/convpairs_cover.dir/cover/pair_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
