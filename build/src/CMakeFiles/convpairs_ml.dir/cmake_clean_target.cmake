file(REMOVE_RECURSE
  "libconvpairs_ml.a"
)
