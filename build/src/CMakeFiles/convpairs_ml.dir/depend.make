# Empty dependencies file for convpairs_ml.
# This may be replaced when dependencies are built.
