
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/boosted_stumps.cc" "src/CMakeFiles/convpairs_ml.dir/ml/boosted_stumps.cc.o" "gcc" "src/CMakeFiles/convpairs_ml.dir/ml/boosted_stumps.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/convpairs_ml.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/convpairs_ml.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/convpairs_ml.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/convpairs_ml.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/CMakeFiles/convpairs_ml.dir/ml/scaler.cc.o" "gcc" "src/CMakeFiles/convpairs_ml.dir/ml/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
