file(REMOVE_RECURSE
  "CMakeFiles/convpairs_ml.dir/ml/boosted_stumps.cc.o"
  "CMakeFiles/convpairs_ml.dir/ml/boosted_stumps.cc.o.d"
  "CMakeFiles/convpairs_ml.dir/ml/logistic_regression.cc.o"
  "CMakeFiles/convpairs_ml.dir/ml/logistic_regression.cc.o.d"
  "CMakeFiles/convpairs_ml.dir/ml/metrics.cc.o"
  "CMakeFiles/convpairs_ml.dir/ml/metrics.cc.o.d"
  "CMakeFiles/convpairs_ml.dir/ml/scaler.cc.o"
  "CMakeFiles/convpairs_ml.dir/ml/scaler.cc.o.d"
  "libconvpairs_ml.a"
  "libconvpairs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
