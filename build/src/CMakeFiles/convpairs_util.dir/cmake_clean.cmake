file(REMOVE_RECURSE
  "CMakeFiles/convpairs_util.dir/util/csv.cc.o"
  "CMakeFiles/convpairs_util.dir/util/csv.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/flags.cc.o"
  "CMakeFiles/convpairs_util.dir/util/flags.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/logging.cc.o"
  "CMakeFiles/convpairs_util.dir/util/logging.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/parallel.cc.o"
  "CMakeFiles/convpairs_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/rng.cc.o"
  "CMakeFiles/convpairs_util.dir/util/rng.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/status.cc.o"
  "CMakeFiles/convpairs_util.dir/util/status.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/string_util.cc.o"
  "CMakeFiles/convpairs_util.dir/util/string_util.cc.o.d"
  "CMakeFiles/convpairs_util.dir/util/table.cc.o"
  "CMakeFiles/convpairs_util.dir/util/table.cc.o.d"
  "libconvpairs_util.a"
  "libconvpairs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
