# Empty dependencies file for convpairs_util.
# This may be replaced when dependencies are built.
