
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/convpairs_util.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/csv.cc.o.d"
  "/root/repo/src/util/flags.cc" "src/CMakeFiles/convpairs_util.dir/util/flags.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/flags.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/convpairs_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/convpairs_util.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/convpairs_util.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/convpairs_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/convpairs_util.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/convpairs_util.dir/util/table.cc.o" "gcc" "src/CMakeFiles/convpairs_util.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
