file(REMOVE_RECURSE
  "libconvpairs_util.a"
)
