file(REMOVE_RECURSE
  "CMakeFiles/convpairs_sssp.dir/sssp/all_pairs.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/all_pairs.cc.o.d"
  "CMakeFiles/convpairs_sssp.dir/sssp/bfs.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/bfs.cc.o.d"
  "CMakeFiles/convpairs_sssp.dir/sssp/budget.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/budget.cc.o.d"
  "CMakeFiles/convpairs_sssp.dir/sssp/dijkstra.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/dijkstra.cc.o.d"
  "CMakeFiles/convpairs_sssp.dir/sssp/distance_matrix.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/distance_matrix.cc.o.d"
  "CMakeFiles/convpairs_sssp.dir/sssp/incremental.cc.o"
  "CMakeFiles/convpairs_sssp.dir/sssp/incremental.cc.o.d"
  "libconvpairs_sssp.a"
  "libconvpairs_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
