# Empty compiler generated dependencies file for convpairs_sssp.
# This may be replaced when dependencies are built.
