file(REMOVE_RECURSE
  "libconvpairs_sssp.a"
)
