
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sssp/all_pairs.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/all_pairs.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/all_pairs.cc.o.d"
  "/root/repo/src/sssp/bfs.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/bfs.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/bfs.cc.o.d"
  "/root/repo/src/sssp/budget.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/budget.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/budget.cc.o.d"
  "/root/repo/src/sssp/dijkstra.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/dijkstra.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/dijkstra.cc.o.d"
  "/root/repo/src/sssp/distance_matrix.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/distance_matrix.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/distance_matrix.cc.o.d"
  "/root/repo/src/sssp/incremental.cc" "src/CMakeFiles/convpairs_sssp.dir/sssp/incremental.cc.o" "gcc" "src/CMakeFiles/convpairs_sssp.dir/sssp/incremental.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
