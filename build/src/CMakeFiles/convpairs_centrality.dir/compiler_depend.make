# Empty compiler generated dependencies file for convpairs_centrality.
# This may be replaced when dependencies are built.
