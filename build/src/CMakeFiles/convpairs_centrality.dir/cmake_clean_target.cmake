file(REMOVE_RECURSE
  "libconvpairs_centrality.a"
)
