
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/brandes.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/brandes.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/brandes.cc.o.d"
  "/root/repo/src/centrality/closeness.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/closeness.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/closeness.cc.o.d"
  "/root/repo/src/centrality/degree.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/degree.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/degree.cc.o.d"
  "/root/repo/src/centrality/kcore.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/kcore.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/kcore.cc.o.d"
  "/root/repo/src/centrality/pagerank.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/pagerank.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/pagerank.cc.o.d"
  "/root/repo/src/centrality/sampled_betweenness.cc" "src/CMakeFiles/convpairs_centrality.dir/centrality/sampled_betweenness.cc.o" "gcc" "src/CMakeFiles/convpairs_centrality.dir/centrality/sampled_betweenness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/convpairs_sssp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/convpairs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
