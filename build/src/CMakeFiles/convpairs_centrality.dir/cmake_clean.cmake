file(REMOVE_RECURSE
  "CMakeFiles/convpairs_centrality.dir/centrality/brandes.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/brandes.cc.o.d"
  "CMakeFiles/convpairs_centrality.dir/centrality/closeness.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/closeness.cc.o.d"
  "CMakeFiles/convpairs_centrality.dir/centrality/degree.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/degree.cc.o.d"
  "CMakeFiles/convpairs_centrality.dir/centrality/kcore.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/kcore.cc.o.d"
  "CMakeFiles/convpairs_centrality.dir/centrality/pagerank.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/pagerank.cc.o.d"
  "CMakeFiles/convpairs_centrality.dir/centrality/sampled_betweenness.cc.o"
  "CMakeFiles/convpairs_centrality.dir/centrality/sampled_betweenness.cc.o.d"
  "libconvpairs_centrality.a"
  "libconvpairs_centrality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_centrality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
