# Empty compiler generated dependencies file for convpairs_baseline.
# This may be replaced when dependencies are built.
