file(REMOVE_RECURSE
  "CMakeFiles/convpairs_baseline.dir/baseline/incidence.cc.o"
  "CMakeFiles/convpairs_baseline.dir/baseline/incidence.cc.o.d"
  "libconvpairs_baseline.a"
  "libconvpairs_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convpairs_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
