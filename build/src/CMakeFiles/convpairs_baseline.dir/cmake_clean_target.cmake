file(REMOVE_RECURSE
  "libconvpairs_baseline.a"
)
