// convpairs_lint: dependency-free repo-invariant checker, registered as a
// ctest test (see tools/CMakeLists.txt). Usage: convpairs_lint <repo_root>.
//
// Enforced invariants (each one has bitten a real graph/metrics codebase):
//   1. src/util/status.h keeps `[[nodiscard]]` on Status and StatusOr so the
//      compiler rejects silently discarded errors under -Werror.
//   2. No std::cout / std::cerr / printf-to-stdout in src/ library code —
//      diagnostics go through src/util/logging so experiments can filter by
//      level and keep stdout clean for data. (util/logging and the fatal
//      path in util/check.h are the only sanctioned sinks.)
//   3. No rand() / srand() / std::random_device outside src/util/rng —
//      every random draw must flow through the seeded xoshiro Rng or the
//      paper tables stop being bit-for-bit reproducible.
//   4. Include guards follow CONVPAIRS_<PATH>_H_ (path relative to src/,
//      uppercased, separators mapped to '_').
//   5. Every bench/*.cc calls FinishAndExport so each benchmark emits its
//      BENCH_<name>.json telemetry (the obs contract from PR 1).
//   6. No raw std::thread construction outside src/util — parallel work
//      must run on the persistent work-stealing pool (util/parallel.h /
//      util/thread_pool.h) so nesting, shutdown and steal telemetry stay
//      centralized and TSan covers one scheduler, not ad-hoc spawns.
//   7. Observable names are machine-friendly: string literals registered
//      via GetCounter/GetGauge/GetHistogram or opened as ScopedSpan must
//      match [a-z0-9_.]+ — they feed JSON/CSV exports, the Chrome trace
//      and the scripts/ summaries, where one stray space or uppercase
//      letter breaks every downstream grep. Flight-recorder event kinds
//      must be spelled as FlightEventKind enum constants; casting raw
//      integers (outside src/obs/flight_recorder.* itself, which decodes
//      ring slots) would bypass the exporter's kind dispatch and make
//      events silently vanish from the timeline.
//   8. Raw socket syscalls (::socket/::bind/::accept/::recv/... and the
//      sockaddr/AF_INET machinery) live only in src/server/ — every other
//      layer talks TCP through the RAII wrappers in server/socket.h, so
//      portability quirks (SIGPIPE, EINTR, loopback-only binds) are fixed
//      in one translation unit, mirroring how invariant 6 confines
//      std::thread.
//   9. SsspBudget::Refund() is called only under src/sssp/ — a refund is
//      an engine-level statement ("this traversal terminated early and
//      settled an X fraction"), so it must be issued by the traversal that
//      knows X, not estimated by a caller. Outer layers spend refunds
//      through the whole-unit TrySpendRefund()/ChargeSkipped() APIs, whose
//      names the matcher deliberately does not flag.
//
// The scanner strips string literals and comments line-by-line before
// matching, so documentation may mention forbidden tokens freely.
// (Invariant 7 is the exception: it inspects the literal at a registration
// site, using the stripped line only to confirm the site is real code.)

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;
  int line;  // 0 = whole-file finding
  std::string message;
};

std::vector<Violation> g_violations;

void Report(const fs::path& file, int line, std::string message) {
  g_violations.push_back({file.string(), line, std::move(message)});
}

bool ReadLines(const fs::path& path, std::vector<std::string>* lines) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) lines->push_back(line);
  return true;
}

// Removes the contents of string/char literals and comments from one line of
// C++ so token matching cannot fire inside text. `in_block_comment` carries
// /* ... */ state across lines.
std::string StripLiteralsAndComments(const std::string& line,
                                     bool* in_block_comment) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (*in_block_comment) {
      if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
        *in_block_comment = false;
        ++i;
      }
      continue;
    }
    char c = line[i];
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
      *in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      out.push_back(quote);
      ++i;
      while (i < line.size()) {
        if (line[i] == '\\') {
          ++i;  // Skip the escaped character.
        } else if (line[i] == quote) {
          out.push_back(quote);
          break;
        }
        ++i;
      }
      continue;
    }
    out.push_back(c);
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when `token` occurs in `code` as a standalone identifier (not a
// substring of a longer identifier and not qualified beyond what the token
// itself spells, so "rand" does not match "operand" or "Rng::rand_state").
bool ContainsToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    bool left_ok =
        pos == 0 ||
        (!IsIdentChar(code[pos - 1]) && code[pos - 1] != ':' &&
         code[pos - 1] != '.' && code[pos - 1] != '>');
    size_t end = pos + token.size();
    bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

// Like ContainsToken but member access counts: `budget->Refund(`,
// `budget.Refund(` and `&SsspBudget::Refund` all match, while longer
// identifiers (TrySpendRefund) still do not. Needed by invariant 9, whose
// forbidden token is a method name and therefore always appears qualified.
bool ContainsMemberToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

std::string ExpectedGuard(const fs::path& rel_to_src) {
  std::string guard = "CONVPAIRS_";
  for (char c : rel_to_src.generic_string()) {
    if (c == '/' || c == '.') {
      guard.push_back('_');
    } else {
      guard.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
    }
  }
  guard.push_back('_');
  return guard;
}

// --- Invariant 1: [[nodiscard]] stays on Status/StatusOr. --------------------

void CheckStatusNodiscard(const fs::path& repo_root) {
  const fs::path header = repo_root / "src" / "util" / "status.h";
  std::vector<std::string> lines;
  if (!ReadLines(header, &lines)) {
    Report(header, 0, "missing: the Status/StatusOr header must exist");
    return;
  }
  bool status_marked = false;
  bool statusor_marked = false;
  for (const std::string& line : lines) {
    if (line.find("class [[nodiscard]] Status {") != std::string::npos) {
      status_marked = true;
    }
    if (line.find("class [[nodiscard]] StatusOr {") != std::string::npos) {
      statusor_marked = true;
    }
  }
  if (!status_marked) {
    Report(header, 0,
           "Status must be declared `class [[nodiscard]] Status` so "
           "discarded errors fail the -Werror build");
  }
  if (!statusor_marked) {
    Report(header, 0,
           "StatusOr must be declared `class [[nodiscard]] StatusOr` so "
           "discarded results fail the -Werror build");
  }
}

// --- Invariant 7: observable names + flight-recorder kind hygiene. -----------

bool IsValidObservableName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

// Checks the first string literal after each metric/span registration site
// on `raw`. Concatenated names ("prefix.seat" + std::to_string(i)) validate
// their literal prefix; sites passing a variable have no literal and are
// skipped (the variable's construction site is checked instead).
void CheckObservableNameLiterals(const fs::path& path, const std::string& raw,
                                 const std::string& code, int line_no) {
  static const char* kSites[] = {"GetCounter", "GetGauge", "GetHistogram",
                                 "ScopedSpan"};
  for (const char* site : kSites) {
    // Plain find: registration sites are qualified calls
    // (registry.GetCounter, obs::ScopedSpan), which ContainsToken's
    // identifier rules would reject. The stripped `code` gate still keeps
    // comment-only mentions from matching.
    if (code.find(site) == std::string::npos) continue;
    for (size_t at = raw.find(site); at != std::string::npos;
         at = raw.find(site, at + 1)) {
      const size_t quote = raw.find('"', at);
      if (quote == std::string::npos) continue;
      const size_t end = raw.find('"', quote + 1);
      if (end == std::string::npos) continue;
      const std::string name = raw.substr(quote + 1, end - quote - 1);
      if (!IsValidObservableName(name)) {
        Report(path, line_no,
               std::string(site) + " name \"" + name +
                   "\" must match [a-z0-9_.]+ (exports, traces and summary "
                   "scripts key on these names)");
      }
    }
  }
}

bool IsFlightRecorderHome(const fs::path& rel_to_src) {
  const std::string p = rel_to_src.generic_string();
  return p == "obs/flight_recorder.h" || p == "obs/flight_recorder.cc";
}

void CheckFlightKindCast(const fs::path& path, const std::string& code,
                         int line_no) {
  for (const char* pattern :
       {"static_cast<FlightEventKind>", "static_cast<obs::FlightEventKind>",
        "static_cast<convpairs::obs::FlightEventKind>",
        "(FlightEventKind)", "(obs::FlightEventKind)"}) {
    if (code.find(pattern) != std::string::npos) {
      Report(path, line_no,
             "record flight events with named FlightEventKind constants, "
             "not casts from raw integers (only obs/flight_recorder.* may "
             "decode the enum)");
      return;
    }
  }
}

// --- Invariants 2-4: per-file scans over src/. -------------------------------

bool IsLoggingSink(const fs::path& rel_to_src) {
  const std::string p = rel_to_src.generic_string();
  return p == "util/logging.h" || p == "util/logging.cc" ||
         p == "util/check.h";
}

bool IsRngHome(const fs::path& rel_to_src) {
  const std::string p = rel_to_src.generic_string();
  return p == "util/rng.h" || p == "util/rng.cc";
}

// Threading is owned by src/util (the work-stealing pool behind
// ParallelFor) and src/server (lifecycle-managed listener/session/
// dispatcher threads — a serving loop is not a data-parallel region, and
// its batch compute still flows through the pooled MS-BFS engine).
// Everything else schedules through the pool so that nesting, shutdown and
// steal telemetry stay centralized.
bool IsThreadHome(const fs::path& rel_to_src) {
  const std::string p = rel_to_src.generic_string();
  return p.rfind("util/", 0) == 0 || p.rfind("server/", 0) == 0;
}

// --- Invariant 8: raw sockets are confined to src/server/. -------------------

bool IsSocketHome(const fs::path& rel_to_src) {
  return rel_to_src.generic_string().rfind("server/", 0) == 0;
}

// --- Invariant 9: fractional refunds are confined to src/sssp/. --------------

bool IsRefundHome(const fs::path& rel_to_src) {
  return rel_to_src.generic_string().rfind("sssp/", 0) == 0;
}

void CheckSocketConfinement(const fs::path& path, const std::string& code,
                            int line_no) {
  for (const char* header :
       {"<sys/socket.h>", "<netinet/in.h>", "<arpa/inet.h>"}) {
    if (code.find(header) != std::string::npos) {
      Report(path, line_no,
             std::string("socket header ") + header +
                 " may only be included under src/server/ (use the "
                 "server/socket.h wrappers)");
    }
  }
  for (const char* token :
       {"sockaddr", "sockaddr_in", "AF_INET", "SOCK_STREAM", "accept",
        "recv", "bind", "listen", "connect", "setsockopt", "getsockname"}) {
    if (ContainsToken(code, token)) {
      Report(path, line_no,
             std::string("raw socket API '") + token +
                 "' may only appear under src/server/ (use the "
                 "server/socket.h wrappers)");
    }
  }
}

void CheckSrcFile(const fs::path& path, const fs::path& rel_to_src) {
  std::vector<std::string> lines;
  if (!ReadLines(path, &lines)) {
    Report(path, 0, "unreadable source file");
    return;
  }

  const bool logging_ok = IsLoggingSink(rel_to_src);
  const bool rng_ok = IsRngHome(rel_to_src);
  const bool thread_ok = IsThreadHome(rel_to_src);
  const bool flight_ok = IsFlightRecorderHome(rel_to_src);
  const bool socket_ok = IsSocketHome(rel_to_src);
  const bool refund_ok = IsRefundHome(rel_to_src);
  bool in_block_comment = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string code =
        StripLiteralsAndComments(lines[i], &in_block_comment);
    const int line_no = static_cast<int>(i) + 1;

    CheckObservableNameLiterals(path, lines[i], code, line_no);
    if (!flight_ok) CheckFlightKindCast(path, code, line_no);
    if (!socket_ok) CheckSocketConfinement(path, code, line_no);

    if (!logging_ok) {
      if (code.find("std::cout") != std::string::npos ||
          code.find("std::cerr") != std::string::npos) {
        Report(path, line_no,
               "library code must log via util/logging, not iostream");
      }
      // printf/fprintf write to stdio directly; snprintf (buffer formatting)
      // is fine. fputs/puts are the same sin under another name.
      for (const char* fn : {"printf", "fprintf", "puts", "fputs"}) {
        if (ContainsToken(code, fn)) {
          Report(path, line_no,
                 std::string("library code must log via util/logging, not ") +
                     fn + "()");
        }
      }
    }
    if (!rng_ok) {
      for (const char* fn : {"rand", "srand", "rand_r", "random_device"}) {
        if (ContainsToken(code, fn)) {
          Report(path, line_no,
                 std::string("randomness must flow through util/rng (found ") +
                     fn + ")");
        }
      }
    }
    if (!thread_ok && code.find("std::thread") != std::string::npos) {
      Report(path, line_no,
             "spawn work via util/parallel.h (thread pool), not raw "
             "std::thread");
    }
    if (!refund_ok && ContainsMemberToken(code, "Refund")) {
      Report(path, line_no,
             "SsspBudget::Refund() may only be called by the bounded "
             "traversals under src/sssp/ — outer layers spend refunds via "
             "TrySpendRefund()/ChargeSkipped()");
    }
  }

  // Include-guard naming for headers.
  if (rel_to_src.extension() == ".h") {
    const std::string expected = ExpectedGuard(rel_to_src);
    bool found_ifndef = false;
    bool found_define = false;
    for (const std::string& line : lines) {
      if (!found_ifndef && line.rfind("#ifndef ", 0) == 0) {
        found_ifndef = true;
        if (line.substr(8) != expected) {
          Report(path, 0, "include guard must be " + expected +
                              " (found: " + line.substr(8) + ")");
        }
        continue;
      }
      if (found_ifndef && line.rfind("#define ", 0) == 0) {
        found_define = line.substr(8) == expected;
        break;
      }
    }
    if (!found_ifndef) {
      Report(path, 0, "header missing include guard " + expected);
    } else if (!found_define) {
      Report(path, 0, "#define must immediately follow #ifndef " + expected);
    }
  }
}

// --- Invariant 5: every bench calls FinishAndExport. -------------------------

void CheckBenchFile(const fs::path& path) {
  std::vector<std::string> lines;
  if (!ReadLines(path, &lines)) {
    Report(path, 0, "unreadable bench file");
    return;
  }
  bool exports = false;
  bool in_block_comment = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    exports = exports || lines[i].find("FinishAndExport") != std::string::npos;
    // Benches register instruments too, so the naming invariant (7)
    // covers them as well.
    const std::string code =
        StripLiteralsAndComments(lines[i], &in_block_comment);
    CheckObservableNameLiterals(path, lines[i], code,
                                static_cast<int>(i) + 1);
  }
  if (!exports) {
    Report(path, 0,
           "bench must call FinishAndExport so BENCH_<name>.json telemetry "
           "is written (see bench/common/bench_env.h)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo_root>\n", argv[0]);
    return 2;
  }
  const fs::path repo_root = argv[1];
  const fs::path src_root = repo_root / "src";
  const fs::path bench_root = repo_root / "bench";
  if (!fs::is_directory(src_root) || !fs::is_directory(bench_root)) {
    std::fprintf(stderr, "convpairs_lint: %s is not the repo root\n",
                 repo_root.string().c_str());
    return 2;
  }

  CheckStatusNodiscard(repo_root);

  int files_scanned = 0;
  for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    const std::string ext = path.extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    CheckSrcFile(path, fs::relative(path, src_root));
    ++files_scanned;
  }
  // bench/*.cc only — bench/common/ holds the harness itself, which defines
  // rather than calls FinishAndExport.
  for (const auto& entry : fs::directory_iterator(bench_root)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".cc") continue;
    CheckBenchFile(entry.path());
    ++files_scanned;
  }

  if (g_violations.empty()) {
    std::printf("convpairs_lint: OK (%d files scanned)\n", files_scanned);
    return 0;
  }
  for (const Violation& v : g_violations) {
    if (v.line > 0) {
      std::fprintf(stderr, "%s:%d: %s\n", v.file.c_str(), v.line,
                   v.message.c_str());
    } else {
      std::fprintf(stderr, "%s: %s\n", v.file.c_str(), v.message.c_str());
    }
  }
  std::fprintf(stderr, "convpairs_lint: %zu violation(s) in %d files\n",
               g_violations.size(), files_scanned);
  return 1;
}
