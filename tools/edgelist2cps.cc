// edgelist2cps: convert text edge lists into .cps binary snapshots.
//
// A .cps file (graph/io/snapshot_format.h) is a versioned, checksummed,
// mmap-loadable container holding a compressed CSR adjacency. Converting
// once moves all parsing cost offline: convpairs_cli --format=cps and
// convpairs_server open the result in milliseconds via mmap, with the
// varint codec typically keeping >2.5x less adjacency resident than the
// u32 CSR the text loader builds.
//
//   edgelist2cps --input g1.txt --output g1.cps
//   edgelist2cps --input g2.txt --output g2.cps --num-nodes 81307
//
// Snapshot pairs must share one node-id space; pass --num-nodes with the
// pair's common id-space size (max over both files) when converting each
// half, exactly what the text loaders do internally. The converter prints
// the encoded size and ratio so the residency win is visible up front.

#include <algorithm>
#include <cstdio>
#include <string>

#include "graph/codec/decompressor.h"
#include "graph/graph.h"
#include "graph/graph_io.h"
#include "graph/io/snapshot_io.h"
#include "util/flags.h"

using namespace convpairs;

namespace {

int Run(const FlagParser& flags) {
  const std::string input = flags.GetString("input");
  const std::string output = flags.GetString("output");
  if (input.empty() || output.empty()) {
    std::fprintf(stderr, "error: --input and --output are required\n");
    return 1;
  }
  const std::string codec = flags.GetString("codec");
  uint32_t codec_id = 0;
  if (codec == "varint") {
    codec_id = VarintDecompressor::kCodecId;
  } else if (codec == "nop") {
    codec_id = NopDecompressor::kCodecId;
  } else {
    std::fprintf(stderr, "error: --codec must be 'varint' or 'nop'\n");
    return 1;
  }
  auto num_nodes = flags.GetInt("num-nodes");
  if (!num_nodes.ok() || *num_nodes < 0) {
    std::fprintf(stderr, "error: --num-nodes must be a non-negative int\n");
    return 1;
  }

  auto parsed = ReadEdgeList(input);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Graph g = std::move(*parsed);
  if (*num_nodes > 0) {
    if (static_cast<NodeId>(*num_nodes) < g.num_nodes()) {
      std::fprintf(stderr,
                   "error: --num-nodes %lld is smaller than the file's id "
                   "space (%u)\n",
                   static_cast<long long>(*num_nodes), g.num_nodes());
      return 1;
    }
    // Pad the id space so both halves of a snapshot pair line up.
    g = Graph::FromEdges(static_cast<NodeId>(*num_nodes), g.ToEdgeList());
  }

  Status written = WriteCpsSnapshot(g, output, codec_id);
  if (!written.ok()) {
    std::fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }

  // Re-open what we wrote: proves the file round-trips through the
  // validating loader and yields the honest resident-bytes numbers.
  auto snapshot = CpsSnapshot::Open(output);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "error: wrote %s but it failed to load back: %s\n",
                 output.c_str(), snapshot.status().ToString().c_str());
    return 1;
  }
  const CpsSnapshot::LoadInfo& info = snapshot->info();
  std::printf("wrote %s: nodes=%u directed_edges=%llu codec=%s\n",
              output.c_str(), snapshot->num_nodes(),
              static_cast<unsigned long long>(snapshot->num_directed_edges()),
              snapshot->codec_name());
  std::printf(
      "resident adjacency: %llu bytes (RAM CSR: %llu bytes, residency "
      "ratio x1000: %lld; codec ratio x1000: %lld), load %.2f ms\n",
      static_cast<unsigned long long>(info.resident_bytes),
      static_cast<unsigned long long>(info.csr_resident_bytes),
      static_cast<long long>(info.resident_ratio_x1000),
      static_cast<long long>(info.ratio_x1000), info.load_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "edgelist2cps: convert a static edge list (\"u v\" per line) into a "
      "checksummed, mmap-loadable .cps binary snapshot.");
  flags.Define("input", "", "static edge list file to convert");
  flags.Define("output", "", "output .cps path");
  flags.Define("codec", "varint",
               "adjacency codec: 'varint' (delta-gap compressed) or 'nop' "
               "(raw u32, zero-copy)");
  flags.Define("num-nodes", "0",
               "pad the id space to this many nodes (0 = the file's own "
               "max id + 1); use the pair-wide max when converting a "
               "snapshot pair");
  flags.Define("help", "false", "print usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help").ok() && *flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  return Run(flags);
}
