// convpairs_server: batched, concurrent query serving over one snapshot
// pair loaded into shared immutable CSR at startup.
//
// Snapshot sources (same flags as convpairs_cli):
//   --g1 FILE --g2 FILE   two static edge lists (G1 must be contained in G2)
//                         or, with --format=cps (auto-sniffed from the .cps
//                         extension), two binary snapshots from edgelist2cps
//                         that the server mmaps instead of parsing —
//                         startup drops from text-parse seconds to
//                         checksum-validate milliseconds, and the varint
//                         codec serves with the compressed payload resident
//   --input FILE          temporal edge list, split at --g1-fraction/--g2-fraction
//   --dataset NAME        generated paper dataset analog at --scale
//
// Serving flags:
//   --port P              listen on 127.0.0.1:P (0 = ephemeral; the chosen
//                         port is printed as "listening on port N")
//   --batch-window-us U   batching window: a distance query waits at most U
//                         microseconds for lane sharing (default 2000)
//   --batch-lanes N       flush when N unique sources are pending
//                         (default 64 = one full MS-BFS scan; 1 disables
//                         batching — every query runs its own BFS)
//   --scan-per-query      resolve every query with its own scan (the
//                         unbatched baseline bench_server_load measures)
//   --selector/--budget/--landmarks/--seed
//                         configuration of the cached TOPK answer
//   --slow-us U           record any request slower than U microseconds in
//                         the slow-query ring (0 = per-verb defaults); dump
//                         the ring live with the SLOW verb
//   --metrics-out/--trace-out
//                         exported on graceful shutdown (SIGINT/SIGTERM
//                         drains in-flight batches first, then exit 0)
//
// Live telemetry: the METRICS verb returns the whole registry as
// Prometheus-style text exposition (block reply), so a scraper needs no
// restart or file export — see src/obs/exposition.h.
//
// Protocol: see src/server/protocol.h. Quick tour with nc:
//   $ convpairs_server --dataset facebook --scale 0.1 --port 7315 &
//   $ printf 'DIST 3 41 1\nDELTA 3 41\nTOPK 5\nPING\nMETRICS\n' | nc 127.0.0.1 7315

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/validation.h"
#include "obs/obs.h"
#include "server/server.h"
#include "server/snapshots.h"
#include "util/flags.h"
#include "util/shutdown.h"

using namespace convpairs;

namespace {

// The watcher thread must be installed BEFORE any server thread spawns
// (threads inherit the blocked-signal mask from their creator), so the
// server it will eventually stop is published through this pointer once
// constructed. A signal that beats construction just exits.
std::atomic<server::ConvpairsServer*> g_server{nullptr};

/// True when --format selects .cps: explicitly, or by extension sniffing
/// in the default auto mode.
bool UseCpsFormat(const FlagParser& flags) {
  const std::string format = flags.GetString("format");
  if (format == "cps") return true;
  if (format != "auto") return false;
  const std::string g1 = flags.GetString("g1");
  const std::string g2 = flags.GetString("g2");
  const auto is_cps = [](const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".cps") == 0;
  };
  return !g1.empty() && !g2.empty() && is_cps(g1) && is_cps(g2);
}

/// Loads the snapshot pair exactly the way convpairs_cli does, so a pair
/// that works for a batch run serves unchanged.
int LoadSnapshots(const FlagParser& flags, Graph* g1, Graph* g2,
                  std::string* source) {
  if (flags.IsSet("g1") || flags.IsSet("g2")) {
    if (!flags.IsSet("g1") || !flags.IsSet("g2")) {
      std::fprintf(stderr, "error: --g1 and --g2 must be given together\n");
      return 1;
    }
    auto first = ReadEdgeList(flags.GetString("g1"));
    auto second = ReadEdgeList(flags.GetString("g2"));
    if (!first.ok() || !second.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   (!first.ok() ? first.status() : second.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    NodeId space = std::max(first->num_nodes(), second->num_nodes());
    *g1 = Graph::FromEdges(space, first->ToEdgeList());
    *g2 = Graph::FromEdges(space, second->ToEdgeList());
    Status valid = ValidateSnapshotPair(*g1, *g2);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid snapshot pair: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    *source = flags.GetString("g1") + " -> " + flags.GetString("g2");
    return 0;
  }

  TemporalGraph temporal;
  if (flags.IsSet("input")) {
    auto parsed = ReadTemporalEdgeList(flags.GetString("input"));
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    temporal = std::move(*parsed);
    Status valid = ValidateTemporalStream(temporal);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid temporal stream: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    *source = flags.GetString("input");
  } else {
    auto scale = flags.GetDouble("scale");
    if (!scale.ok()) {
      std::fprintf(stderr, "error: %s\n", scale.status().ToString().c_str());
      return 1;
    }
    auto dataset = MakeDataset(flags.GetString("dataset"), *scale);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
      return 1;
    }
    temporal = std::move(dataset->temporal);
    *source = "generated dataset '" + flags.GetString("dataset") + "'";
  }
  auto g1_fraction = flags.GetDouble("g1-fraction");
  auto g2_fraction = flags.GetDouble("g2-fraction");
  if (!g1_fraction.ok() || !g2_fraction.ok() || *g1_fraction >= *g2_fraction ||
      *g1_fraction <= 0.0 || *g2_fraction > 1.0) {
    std::fprintf(stderr, "error: need 0 < g1-fraction < g2-fraction <= 1\n");
    return 1;
  }
  *g1 = temporal.SnapshotAtFraction(*g1_fraction);
  *g2 = temporal.SnapshotAtFraction(*g2_fraction);
  return 0;
}

int Run(const FlagParser& flags) {
  // The Graphs must outlive the server in borrow mode; .cps mode hands the
  // server an owned ServingSnapshots and never builds RAM CSR up front.
  Graph g1;
  Graph g2;
  std::string source;
  std::unique_ptr<server::ServingSnapshots> snapshots;
  if (UseCpsFormat(flags)) {
    if (!flags.IsSet("g1") || !flags.IsSet("g2")) {
      std::fprintf(stderr, "error: --format=cps needs --g1 and --g2\n");
      return 1;
    }
    auto opened = server::ServingSnapshots::Open(flags.GetString("g1"),
                                                 flags.GetString("g2"));
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    snapshots = std::move(*opened);
    source = flags.GetString("g1") + " -> " + flags.GetString("g2");
    const server::ServingSnapshots::LoadStats& load =
        snapshots->load_stats();
    std::printf("source: %s (cps)\n", source.c_str());
    std::printf(
        "snapshots: %u nodes, codec=%s, resident %llu bytes (RAM CSR %llu, "
        "ratio x1000 %lld), loaded in %lld ms\n",
        snapshots->num_nodes(), load.codec.c_str(),
        static_cast<unsigned long long>(load.resident_bytes),
        static_cast<unsigned long long>(load.csr_resident_bytes),
        static_cast<long long>(load.ratio_x1000),
        static_cast<long long>(load.load_ms));
  } else {
    if (int rc = LoadSnapshots(flags, &g1, &g2, &source); rc != 0) return rc;
    std::printf("source: %s\n", source.c_str());
    std::printf("G1: %u nodes, %zu edges | G2: %u nodes, %zu edges\n",
                g1.num_active_nodes(), g1.num_edges(), g2.num_active_nodes(),
                g2.num_edges());
    snapshots = std::make_unique<server::ServingSnapshots>(g1, g2);
  }

  server::ConvpairsServer::Options options;
  auto port = flags.GetInt("port");
  auto window_us = flags.GetInt("batch-window-us");
  auto lanes = flags.GetInt("batch-lanes");
  auto budget = flags.GetInt("budget");
  auto landmarks = flags.GetInt("landmarks");
  auto seed = flags.GetInt("seed");
  auto slow_us = flags.GetInt("slow-us");
  if (!port.ok() || !window_us.ok() || !lanes.ok() || !budget.ok() ||
      !landmarks.ok() || !seed.ok() || !slow_us.ok()) {
    std::fprintf(stderr, "error: numeric flag parse failure\n");
    return 1;
  }
  if (*slow_us < 0) {
    std::fprintf(stderr, "error: --slow-us must be >= 0\n");
    return 1;
  }
  if (*port < 0 || *port > 65535) {
    std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
    return 1;
  }
  if (*lanes < 1 || *lanes > static_cast<int64_t>(kMsBfsBatchWidth)) {
    std::fprintf(stderr, "error: --batch-lanes must be in [1, %u]\n",
                 kMsBfsBatchWidth);
    return 1;
  }
  if (*window_us < 0) {
    std::fprintf(stderr, "error: --batch-window-us must be >= 0\n");
    return 1;
  }
  auto scan_per_query = flags.GetBool("scan-per-query");
  if (!scan_per_query.ok()) {
    std::fprintf(stderr, "error: --scan-per-query must be a boolean\n");
    return 1;
  }
  options.port = static_cast<uint16_t>(*port);
  options.batcher.max_lanes = static_cast<uint32_t>(*lanes);
  options.batcher.window_us = *window_us;
  options.batcher.scan_per_query = *scan_per_query;
  options.topk.selector = flags.GetString("selector");
  options.topk.budget_m = static_cast<int>(*budget);
  options.topk.num_landmarks = static_cast<int>(*landmarks);
  options.topk.seed = static_cast<uint64_t>(*seed);
  options.slow_log.threshold_us_override = *slow_us;

  // Graceful shutdown: the watcher thread asks the server to stop; the main
  // thread (blocked in Wait) performs the actual drain and the exports, so
  // telemetry reflects every request that got a reply. Installed before the
  // server exists so that every server thread inherits the blocked mask.
  RunOnShutdownSignal([](int signum) {
    std::printf("signal %d: draining\n", signum);
    std::fflush(stdout);
    if (server::ConvpairsServer* srv = g_server.load()) {
      srv->RequestStop();
    } else {
      std::_Exit(128 + signum);
    }
  });

  server::ConvpairsServer srv(std::move(snapshots), options);
  g_server.store(&srv);
  Status started = srv.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  // The smoke driver and tests scrape this line for the ephemeral port.
  std::printf("listening on port %u\n", static_cast<unsigned>(srv.port()));
  std::fflush(stdout);
  srv.Wait();
  g_server.store(nullptr);

  if (obs::FlightRecorder::enabled()) {
    std::string trace_path = flags.GetString("trace-out");
    if (trace_path.empty()) {
      trace_path = obs::TraceOutPath("convpairs_server.trace.json");
    }
    if (!trace_path.empty()) {
      Status traced = obs::WriteChromeTrace(trace_path, "convpairs_server");
      if (!traced.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     traced.ToString().c_str());
        return 1;
      }
      std::printf("trace: wrote %s\n", trace_path.c_str());
    }
  }
  std::string metrics_path = flags.GetString("metrics-out");
  if (metrics_path.empty()) metrics_path = obs::MetricsOutPath("");
  if (!metrics_path.empty()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.SetMetadata("tool", "convpairs_server");
    registry.SetMetadata("source", source);
    registry.SetMetadata("selector", options.topk.selector);
    registry.SetMetadata("batch_lanes",
                         std::to_string(options.batcher.max_lanes));
    registry.SetMetadata("batch_window_us",
                         std::to_string(options.batcher.window_us));
    Status exported = obs::ExportMetrics(metrics_path, "convpairs_server");
    if (!exported.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    std::printf("telemetry: wrote %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "convpairs_server: serve DIST/DELTA/TOPK/CAND queries over a snapshot "
      "pair on a loopback TCP port, batching concurrent distance queries "
      "into shared MS-BFS scans. METRICS returns live Prometheus-style "
      "exposition; SLOW dumps the slow-query ring.");
  flags.Define("input", "", "temporal edge list file (u v time [weight])");
  flags.Define("g1", "", "first static snapshot file (u v [weight])");
  flags.Define("g2", "", "second static snapshot file (u v [weight])");
  flags.Define("format", "auto",
               "snapshot file format for --g1/--g2: 'text' (edge list), "
               "'cps' (mmap'd binary snapshot from edgelist2cps), or "
               "'auto' (sniff by .cps extension)");
  flags.Define("dataset", "facebook",
               "generated dataset when --input is absent "
               "(actors|internet|facebook|dblp)");
  flags.Define("scale", "0.25", "generated dataset scale");
  flags.Define("g1-fraction", "0.8", "first snapshot edge fraction");
  flags.Define("g2-fraction", "1.0", "second snapshot edge fraction");
  flags.Define("port", "0",
               "listen port on 127.0.0.1 (0 = ephemeral, printed on stdout)");
  flags.Define("batch-window-us", "2000",
               "max microseconds a distance query waits for lane sharing");
  flags.Define("batch-lanes", "64",
               "flush when this many unique sources are pending (1 = no "
               "batching)");
  flags.Define("scan-per-query", "false",
               "run one full scan per query instead of sharing lanes (the "
               "unbatched baseline)");
  flags.Define("selector", "MMSD", "candidate policy for the TOPK cache");
  flags.Define("budget", "100", "SSSP budget m for the TOPK cache");
  flags.Define("landmarks", "10", "landmark count l for the TOPK cache");
  flags.Define("seed", "0", "random seed for the TOPK cache");
  flags.Define("slow-us", "0",
               "slow-query threshold in microseconds for every verb "
               "(0 = per-verb defaults); inspect live with the SLOW verb");
  flags.Define("metrics-out", "",
               "write serving telemetry to this JSON/CSV file on shutdown; "
               "CONVPAIRS_METRICS_OUT is the env fallback");
  flags.Define("trace-out", "",
               "record request/batch timelines and write Chrome trace-event "
               "JSON on shutdown; CONVPAIRS_TRACE_OUT is the env fallback");
  flags.Define("help", "false", "print usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help").ok() && *flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  obs::InitFlightRecorderFromEnv();
  if (!flags.GetString("trace-out").empty()) {
    obs::FlightRecorder::SetEnabled(true);
  }
  return Run(flags);
}
