# Runs convpairs_cli with --trace-out and validates the emitted Chrome
# trace against the trace-event schema. Invoked by the convpairs_trace_schema
# ctest (see CMakeLists.txt in this directory) with:
#   -DCLI=<convpairs_cli binary> -DVALIDATOR=<scripts/validate_trace.py>
#   -DPYTHON=<python3> -DWORK_DIR=<scratch dir>

set(trace_file "${WORK_DIR}/trace_schema_test.trace.json")
file(REMOVE "${trace_file}")

execute_process(
  COMMAND "${CLI}" --dataset facebook --scale 0.1 --budget 20 --k 5
          --seed 7 --trace-out "${trace_file}"
  RESULT_VARIABLE cli_result
  OUTPUT_VARIABLE cli_output
  ERROR_VARIABLE cli_output)
if(NOT cli_result EQUAL 0)
  message(FATAL_ERROR "convpairs_cli failed (${cli_result}):\n${cli_output}")
endif()
if(NOT EXISTS "${trace_file}")
  message(FATAL_ERROR "--trace-out did not write ${trace_file}:\n${cli_output}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${VALIDATOR}" "${trace_file}" --require-events
  RESULT_VARIABLE validate_result
  OUTPUT_VARIABLE validate_output
  ERROR_VARIABLE validate_output)
if(NOT validate_result EQUAL 0)
  message(FATAL_ERROR "trace schema validation failed:\n${validate_output}")
endif()
message(STATUS "trace schema ok:\n${validate_output}")
file(REMOVE "${trace_file}")
