// convpairs_client: pipelining line client for convpairs_server.
//
// Reads request lines from stdin until EOF, sends them all to the server in
// one pipelined burst (which is what fills the server's MS-BFS lanes), then
// prints one reply line per request to stdout, in request order. Exit code
// 0 when every request drew a reply — including ERR replies, which are
// protocol-level answers, not transport failures.
//
//   $ printf 'DIST 3 41 1\nDELTA 3 41\nPING\n' | convpairs_client --port 7315
//
//   --port P        server port on 127.0.0.1 (required)
//   --errors-fatal  exit 3 if any reply is an ERR line (smoke-test mode)

#include <cstdio>
#include <string>

#include "server/socket.h"
#include "util/flags.h"

using namespace convpairs;

namespace {

int Run(uint16_t port, bool errors_fatal) {
  // Slurp stdin first: the whole request set goes out in one burst.
  std::string requests;
  size_t expected = 0;
  {
    char buf[1 << 16];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), stdin)) > 0) {
      requests.append(buf, got);
    }
    if (!requests.empty() && requests.back() != '\n') requests += '\n';
    for (char c : requests) expected += (c == '\n');
  }

  auto stream = server::ConnectLoopback(port);
  if (!stream.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 stream.status().ToString().c_str());
    return 1;
  }
  if (expected == 0) return 0;
  Status sent = stream->SendAll(requests);
  if (!sent.ok()) {
    std::fprintf(stderr, "send failed: %s\n", sent.ToString().c_str());
    return 1;
  }

  size_t replies = 0;
  size_t errors = 0;
  std::string buffer;
  char chunk[1 << 16];
  while (replies < expected) {
    auto got = stream->Receive(chunk, sizeof(chunk));
    if (!got.ok()) {
      std::fprintf(stderr, "receive failed: %s\n",
                   got.status().ToString().c_str());
      return 1;
    }
    if (*got == 0) {
      std::fprintf(stderr, "server closed after %zu of %zu replies\n",
                   replies, expected);
      return 2;
    }
    buffer.append(chunk, *got);
    size_t consumed = 0;
    size_t nl;
    while (replies < expected &&
           (nl = buffer.find('\n', consumed)) != std::string::npos) {
      errors += (buffer.compare(consumed, 3, "ERR") == 0);
      std::fwrite(buffer.data() + consumed, 1, nl - consumed + 1, stdout);
      consumed = nl + 1;
      ++replies;
    }
    buffer.erase(0, consumed);
  }
  if (errors_fatal && errors > 0) {
    std::fprintf(stderr, "%zu of %zu replies were errors\n", errors, expected);
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "convpairs_client: send stdin request lines to a convpairs_server in "
      "one pipelined burst and print the replies in order.");
  flags.Define("port", "0", "server port on 127.0.0.1");
  flags.Define("errors-fatal", "false",
               "exit 3 when any reply is an ERR line");
  flags.Define("help", "false", "print usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help").ok() && *flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  auto port = flags.GetInt("port");
  auto errors_fatal = flags.GetBool("errors-fatal");
  if (!port.ok() || !errors_fatal.ok() || *port < 1 || *port > 65535) {
    std::fprintf(stderr, "error: --port must be in [1, 65535]\n");
    return 2;
  }
  return Run(static_cast<uint16_t>(*port), *errors_fatal);
}
