// convpairs: command-line front end for budgeted converging-pair detection.
//
// Modes (pick one):
//   --input FILE       temporal edge list ("u v time [weight]") to analyze;
//                      split into snapshots at --g1-fraction / --g2-fraction
//   --g1 FILE --g2 FILE
//                      two static edge lists ("u v [weight]") forming the
//                      snapshot pair (validated: G1 must be contained in G2)
//   --dataset NAME     alternatively, generate a paper dataset analog
//                      (actors | internet | facebook | dblp) at --scale
//   --selector NAME    candidate policy (paper Table 4 name; default MMSD)
//   --budget M         SSSPs per snapshot (total 2M)
//   --k K              pairs to report (default: 20)
//   --weighted         use the quantized-Dijkstra engine
//   --exact            also compute the exact ground truth and report the
//                      achieved coverage (quadratic; small graphs only)
//   --metrics-out F    write run telemetry (SSSP cost counters, phase spans)
//                      to F as JSON (or CSV if F ends in .csv); the
//                      CONVPAIRS_METRICS_OUT env var is the fallback
//   --trace-out F      record a per-seat execution timeline (flight
//                      recorder) and write it to F as Chrome trace-event
//                      JSON, loadable in Perfetto / chrome://tracing; the
//                      CONVPAIRS_TRACE_OUT env var is the fallback
//
// Examples:
//   convpairs_cli --dataset facebook --scale 0.25 --selector MMSD --budget 100
//   convpairs_cli --input edges.txt --g1-fraction 0.8 --budget 50 --exact

#include <cstdio>
#include <cstdlib>

#include "core/experiment.h"
#include "core/selector_registry.h"
#include "core/top_k.h"
#include "cover/coverage.h"
#include "gen/datasets.h"
#include "graph/graph_io.h"
#include "graph/io/snapshot_io.h"
#include "graph/validation.h"
#include "obs/obs.h"
#include "sssp/bfs.h"
#include "sssp/dijkstra.h"
#include "util/flags.h"
#include "util/shutdown.h"
#include "util/timer.h"

using namespace convpairs;

namespace {

/// True when --format selects .cps for this snapshot pair: explicitly, or
/// by extension sniffing in the default auto mode.
bool UseCpsFormat(const FlagParser& flags) {
  const std::string format = flags.GetString("format");
  if (format == "cps") return true;
  if (format != "auto") return false;
  const std::string g1 = flags.GetString("g1");
  const std::string g2 = flags.GetString("g2");
  const auto is_cps = [](const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".cps") == 0;
  };
  return !g1.empty() && !g2.empty() && is_cps(g1) && is_cps(g2);
}

int Run(const FlagParser& flags) {
  // Assemble the snapshot pair.
  Graph g1;
  Graph g2;
  std::string source;
  bool have_snapshots = false;
  if (flags.IsSet("g1") || flags.IsSet("g2")) {
    if (!flags.IsSet("g1") || !flags.IsSet("g2")) {
      std::fprintf(stderr, "error: --g1 and --g2 must be given together\n");
      return 1;
    }
    if (UseCpsFormat(flags)) {
      // Binary snapshots: mmap, validate checksums, decode into RAM CSR.
      // The id space was fixed at conversion time (edgelist2cps
      // --num-nodes), so a pair that loads is already aligned.
      auto first = CpsSnapshot::Open(flags.GetString("g1"));
      auto second = CpsSnapshot::Open(flags.GetString("g2"));
      if (!first.ok() || !second.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     (!first.ok() ? first.status() : second.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      if (first->num_nodes() != second->num_nodes()) {
        std::fprintf(stderr,
                     "error: snapshot pair disagrees on num_nodes (%u vs "
                     "%u); reconvert with edgelist2cps --num-nodes\n",
                     first->num_nodes(), second->num_nodes());
        return 1;
      }
      g1 = first->ToGraph();
      g2 = second->ToGraph();
    } else {
      auto first = ReadEdgeList(flags.GetString("g1"));
      auto second = ReadEdgeList(flags.GetString("g2"));
      if (!first.ok() || !second.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     (!first.ok() ? first.status() : second.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      // Snapshots must share one id space for comparable distance rows.
      NodeId space = std::max(first->num_nodes(), second->num_nodes());
      g1 = Graph::FromEdges(space, first->ToEdgeList());
      g2 = Graph::FromEdges(space, second->ToEdgeList());
    }
    Status valid = ValidateSnapshotPair(g1, g2);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid snapshot pair: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    source = flags.GetString("g1") + " -> " + flags.GetString("g2");
    have_snapshots = true;
  }

  TemporalGraph temporal;
  if (!have_snapshots && flags.IsSet("input")) {
    auto parsed = ReadTemporalEdgeList(flags.GetString("input"));
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n", parsed.status().ToString().c_str());
      return 1;
    }
    temporal = std::move(*parsed);
    Status valid = ValidateTemporalStream(temporal);
    if (!valid.ok()) {
      std::fprintf(stderr, "invalid temporal stream: %s\n",
                   valid.ToString().c_str());
      return 1;
    }
    source = flags.GetString("input");
  } else if (!have_snapshots) {
    auto scale = flags.GetDouble("scale");
    if (!scale.ok()) {
      std::fprintf(stderr, "error: %s\n", scale.status().ToString().c_str());
      return 1;
    }
    auto dataset = MakeDataset(flags.GetString("dataset"), *scale);
    if (!dataset.ok()) {
      std::fprintf(stderr, "error: %s\n", dataset.status().ToString().c_str());
      return 1;
    }
    temporal = std::move(dataset->temporal);
    source = "generated dataset '" + flags.GetString("dataset") + "'";
  }
  if (!have_snapshots) {
    auto g1_fraction = flags.GetDouble("g1-fraction");
    auto g2_fraction = flags.GetDouble("g2-fraction");
    if (!g1_fraction.ok() || !g2_fraction.ok() ||
        *g1_fraction >= *g2_fraction || *g1_fraction <= 0.0 ||
        *g2_fraction > 1.0) {
      std::fprintf(stderr, "error: need 0 < g1-fraction < g2-fraction <= 1\n");
      return 1;
    }
    g1 = temporal.SnapshotAtFraction(*g1_fraction);
    g2 = temporal.SnapshotAtFraction(*g2_fraction);
  }
  std::printf("source: %s\n", source.c_str());
  std::printf("G1: %u nodes, %zu edges | G2: %u nodes, %zu edges\n",
              g1.num_active_nodes(), g1.num_edges(), g2.num_active_nodes(),
              g2.num_edges());

  // Engine and policy.
  BfsEngine bfs_engine;
  DijkstraEngine dijkstra_engine;
  auto weighted = flags.GetBool("weighted");
  if (!weighted.ok()) {
    std::fprintf(stderr, "error: %s\n", weighted.status().ToString().c_str());
    return 1;
  }
  const ShortestPathEngine& engine =
      *weighted ? static_cast<const ShortestPathEngine&>(dijkstra_engine)
                : static_cast<const ShortestPathEngine&>(bfs_engine);

  auto selector = MakeSelector(flags.GetString("selector"));
  if (!selector.ok()) {
    std::fprintf(stderr, "error: %s\n", selector.status().ToString().c_str());
    return 1;
  }

  TopKOptions options;
  auto budget = flags.GetInt("budget");
  auto k = flags.GetInt("k");
  auto landmarks = flags.GetInt("landmarks");
  auto seed = flags.GetInt("seed");
  if (!budget.ok() || !k.ok() || !landmarks.ok() || !seed.ok()) {
    std::fprintf(stderr, "error: numeric flag parse failure\n");
    return 1;
  }
  options.budget_m = static_cast<int>(*budget);
  options.k = static_cast<int>(*k);
  options.num_landmarks = static_cast<int>(*landmarks);
  options.seed = static_cast<uint64_t>(*seed);

  Timer timer;
  TopKResult result =
      FindTopKConvergingPairs(g1, g2, engine, **selector, options);
  std::printf(
      "\npolicy %s, budget m=%d (2m=%lld SSSPs, %.2f%% of nodes), %.3fs\n",
      (*selector)->name().c_str(), options.budget_m,
      static_cast<long long>(result.sssp_used),
      100.0 * options.budget_m / std::max(1u, g1.num_active_nodes()),
      timer.Seconds());
  std::printf("top %zu converging pairs:\n", result.pairs.size());
  for (const ConvergingPair& pair : result.pairs) {
    std::printf("  %u %u delta=%d\n", pair.u, pair.v, pair.delta);
  }

  auto exact = flags.GetBool("exact");
  if (exact.ok() && *exact) {
    std::printf("\ncomputing exact ground truth (quadratic)...\n");
    ExperimentRunner runner(g1, g2, engine);
    int offset = 1;
    std::printf("max delta = %d; true top-k at delta >= %d: %llu pairs\n",
                runner.ground_truth().max_delta(), runner.ThresholdAt(offset),
                static_cast<unsigned long long>(runner.KAt(offset)));
    double coverage =
        CoverageFraction(runner.PairGraphAt(offset), result.candidates);
    std::printf("candidate coverage of the true top-k set: %.1f%%\n",
                100.0 * coverage);
  }

  // Flight-recorder trace: written before the metrics export so the synced
  // obs.flight.* truncation counters land in the telemetry file too.
  // --trace-out wins; CONVPAIRS_TRACE_OUT is the fallback (main() armed the
  // recorder from whichever was set before any work ran).
  if (obs::FlightRecorder::enabled()) {
    std::string trace_path = flags.GetString("trace-out");
    if (trace_path.empty()) trace_path = obs::TraceOutPath("convpairs_cli.trace.json");
    if (!trace_path.empty()) {
      Status traced = obs::WriteChromeTrace(trace_path, "convpairs_cli");
      if (!traced.ok()) {
        std::fprintf(stderr, "trace export failed: %s\n",
                     traced.ToString().c_str());
        return 1;
      }
      std::printf("trace: wrote %s\n", trace_path.c_str());
    }
  }

  // Telemetry: interactive runs get the same machine-readable record as the
  // bench binaries. --metrics-out wins; CONVPAIRS_METRICS_OUT is the
  // fallback; neither set means no file.
  std::string metrics_path = flags.GetString("metrics-out");
  if (metrics_path.empty()) metrics_path = obs::MetricsOutPath("");
  if (!metrics_path.empty()) {
    auto& registry = obs::MetricsRegistry::Global();
    registry.SetMetadata("tool", "convpairs_cli");
    registry.SetMetadata("source", source);
    registry.SetMetadata("selector", (*selector)->name());
    registry.SetMetadata("budget_m", std::to_string(options.budget_m));
    registry.SetMetadata("k", std::to_string(options.k));
    registry.SetMetadata("seed", std::to_string(options.seed));
    registry.SetMetadata("weighted", *weighted ? "true" : "false");
    Status exported = obs::ExportMetrics(metrics_path, "convpairs_cli");
    if (!exported.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   exported.ToString().c_str());
      return 1;
    }
    std::printf("telemetry: wrote %s\n", metrics_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "convpairs_cli: budgeted detection of converging node pairs between "
      "two snapshots of an evolving graph (EDBT'15 reproduction).");
  flags.Define("input", "", "temporal edge list file (u v time [weight])");
  flags.Define("g1", "", "first static snapshot file (u v [weight])");
  flags.Define("g2", "", "second static snapshot file (u v [weight])");
  flags.Define("format", "auto",
               "snapshot file format for --g1/--g2: 'text' (edge list), "
               "'cps' (binary snapshot from edgelist2cps), or 'auto' "
               "(sniff by .cps extension)");
  flags.Define("dataset", "facebook",
               "generated dataset when --input is absent "
               "(actors|internet|facebook|dblp)");
  flags.Define("scale", "0.25", "generated dataset scale");
  flags.Define("g1-fraction", "0.8", "first snapshot edge fraction");
  flags.Define("g2-fraction", "1.0", "second snapshot edge fraction");
  flags.Define("selector", "MMSD", "candidate selection policy");
  flags.Define("budget", "100", "SSSP budget m per snapshot");
  flags.Define("k", "20", "number of pairs to report");
  flags.Define("landmarks", "10", "landmark count l");
  flags.Define("seed", "0", "random seed");
  flags.Define("weighted", "false", "use weighted (Dijkstra) distances");
  flags.Define("exact", "false",
               "also compute exact ground truth and report coverage");
  flags.Define("metrics-out", "",
               "write run telemetry (counters, histograms, spans) to this "
               "JSON/CSV file; CONVPAIRS_METRICS_OUT is the env fallback");
  flags.Define("trace-out", "",
               "record a per-seat execution timeline and write it to this "
               "file as Chrome trace-event JSON (Perfetto-loadable); "
               "CONVPAIRS_TRACE_OUT is the env fallback");
  flags.Define("help", "false", "print usage");

  Status status = flags.Parse(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage().c_str());
    return 2;
  }
  if (flags.GetBool("help").ok() && *flags.GetBool("help")) {
    std::printf("%s", flags.Usage().c_str());
    return 0;
  }
  // Arm the flight recorder before any instrumented work runs; events
  // recorded while disarmed are dropped at the record site.
  obs::InitFlightRecorderFromEnv();
  if (!flags.GetString("trace-out").empty()) {
    obs::FlightRecorder::SetEnabled(true);
  }
  // An interrupted long run still flushes whatever telemetry accumulated:
  // partial counters from a killed budget sweep are routinely the evidence
  // needed to size the next one. The watcher thread may take locks and do
  // file I/O (util/shutdown.h), unlike a signal handler.
  RunOnShutdownSignal([&flags](int signum) {
    std::string trace_path = flags.GetString("trace-out");
    if (trace_path.empty()) {
      trace_path = obs::TraceOutPath("convpairs_cli.trace.json");
    }
    if (obs::FlightRecorder::enabled() && !trace_path.empty()) {
      Status traced = obs::WriteChromeTrace(trace_path, "convpairs_cli");
      if (traced.ok()) {
        std::fprintf(stderr, "interrupted: wrote %s\n", trace_path.c_str());
      }
    }
    std::string metrics_path = flags.GetString("metrics-out");
    if (metrics_path.empty()) metrics_path = obs::MetricsOutPath("");
    if (!metrics_path.empty()) {
      auto& registry = obs::MetricsRegistry::Global();
      registry.SetMetadata("tool", "convpairs_cli");
      registry.SetMetadata("interrupted", "true");
      Status exported = obs::ExportMetrics(metrics_path, "convpairs_cli");
      if (exported.ok()) {
        std::fprintf(stderr, "interrupted: wrote %s\n", metrics_path.c_str());
      }
    }
    std::_Exit(128 + signum);  // Shell convention; skip atexit while
                               // worker threads may still be running.
  });
  return Run(flags);
}
