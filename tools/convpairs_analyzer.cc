// convpairs_analyzer: token-level static analysis for the convpairs repo —
// layering DAG, concurrency discipline, budget-accounting dataflow, and the
// nine invariants inherited from the retired line-based convpairs_lint.
//
// Usage:
//   convpairs_analyzer --repo <root>
//                      [--manifest tools/layering.manifest]
//                      [--suppressions tools/analyzer_suppressions.txt]
//                      [--json-out analyzer_findings.json]
//                      [--dot-out docs/layering.dot]
//
// Unsuppressed findings go to stderr (file:line: [pass] message) and the
// process exits 1; a clean run prints a one-line summary to stdout and exits
// 0; usage or I/O problems exit 2. Suppressed findings and stale suppression
// entries are carried in the JSON artifact for scripts/check_suppressions.py
// to gate on — they never fail the analyzer itself, so a suppression cleanup
// can land separately from the code change that made it stale.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/analyzer.h"
#include "analysis/findings.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --repo <root> [--manifest <file>] "
               "[--suppressions <file>] [--json-out <file>] "
               "[--dot-out <file>]\n",
               argv0);
  return 2;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  convpairs::analysis::AnalyzerOptions options;
  std::string json_out;
  std::string dot_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (std::strcmp(arg, "--repo") == 0 && has_value) {
      options.repo_root = argv[++i];
    } else if (std::strcmp(arg, "--manifest") == 0 && has_value) {
      options.manifest_path = argv[++i];
    } else if (std::strcmp(arg, "--suppressions") == 0 && has_value) {
      options.suppressions_path = argv[++i];
    } else if (std::strcmp(arg, "--json-out") == 0 && has_value) {
      json_out = argv[++i];
    } else if (std::strcmp(arg, "--dot-out") == 0 && has_value) {
      dot_out = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.repo_root.empty()) return Usage(argv[0]);

  const convpairs::StatusOr<convpairs::analysis::AnalysisReport> report =
      convpairs::analysis::RunAnalyzer(options);
  if (!report.ok()) {
    std::fprintf(stderr, "convpairs_analyzer: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  if (!json_out.empty() &&
      !WriteFile(json_out, convpairs::analysis::ReportToJson(*report))) {
    std::fprintf(stderr, "convpairs_analyzer: cannot write %s\n",
                 json_out.c_str());
    return 2;
  }
  if (!dot_out.empty() && !WriteFile(dot_out, report->layering_dot)) {
    std::fprintf(stderr, "convpairs_analyzer: cannot write %s\n",
                 dot_out.c_str());
    return 2;
  }

  for (const convpairs::analysis::Finding& f : report->findings) {
    if (f.suppressed) continue;
    if (f.line > 0) {
      std::fprintf(stderr, "%s:%d: [%s] %s\n", f.file.c_str(), f.line,
                   f.pass.c_str(), f.message.c_str());
    } else {
      std::fprintf(stderr, "%s: [%s] %s\n", f.file.c_str(), f.pass.c_str(),
                   f.message.c_str());
    }
  }

  const int unsuppressed = report->UnsuppressedFindings();
  std::printf(
      "convpairs_analyzer: %d finding(s) (%d suppressed), %d stale "
      "suppression entr%s, %d files scanned\n",
      report->TotalFindings(), report->SuppressedFindings(),
      static_cast<int>(report->StaleSuppressions().size()),
      report->StaleSuppressions().size() == 1 ? "y" : "ies",
      report->files_scanned);
  return unsuppressed == 0 ? 0 : 1;
}
